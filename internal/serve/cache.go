package serve

import (
	"container/list"
	"sync"

	"quditkit/internal/core"
)

// cacheKey is the content address of a submission: the circuit
// fingerprint and the digest of its result-determining run options.
// Because every quditkit execution is deterministic in (processor seed,
// circuit, options), equal keys imply byte-identical Results.
type cacheKey struct {
	fingerprint uint64
	options     uint64
}

// cacheEntry is one cached (key, Result) pair in the LRU list.
type cacheEntry struct {
	key cacheKey
	res core.Result
}

// resultCache is a bounded LRU of completed Results keyed by content
// address. Cached Results are shared across callers and must be
// treated as read-only. A capacity of zero disables the cache.
type resultCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	byKey     map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached Result for key, recording a hit or miss.
func (c *resultCache) get(key cacheKey) (core.Result, bool) {
	return c.lookup(key, true)
}

// peek is get without miss accounting — for drain-time re-checks of a
// key whose miss the Enqueue probe already counted, so cold jobs
// record exactly one miss.
func (c *resultCache) peek(key cacheKey) (core.Result, bool) {
	return c.lookup(key, false)
}

func (c *resultCache) lookup(key cacheKey, countMiss bool) (core.Result, bool) {
	if c.capacity == 0 {
		return core.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		if countMiss {
			c.misses++
		}
		return core.Result{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a Result under key, evicting the least recently used
// entry when the cache is full.
func (c *resultCache) put(key cacheKey, res core.Result) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// counters returns the hit/miss/eviction totals.
func (c *resultCache) counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
