// Package serve is the asynchronous job-service layer of quditkit —
// the piece that turns the synchronous core.Processor.Submit façade
// into a shared near-term resource that many clients can hit at once,
// the operating model the DSN 2025 paper projects for emerging qudit
// processors.
//
// A Service owns a bounded, sharded job queue in front of one
// Processor. Submissions enter through Enqueue (or EnqueueAs with a
// tenant account), are assigned to a shard by circuit fingerprint,
// and are drained in batches through Processor.Submit by one worker
// goroutine per shard. Each shard schedules across tenants by
// weighted deficit round-robin within priority classes (see
// shardQueue): admission quotas and fair dequeue shares are enforced
// per tenant.Account, and a process without a tenant registry runs
// everything under one anonymous account. Every job walks the
// lifecycle Queued → Running → Done/Failed/Cancelled; CancelJob
// aborts a queued job immediately and a running one promptly via the
// context plumbed through core.WithContext.
//
// Scheduling only reorders *dispatch*: per-job seeds derive from
// circuit content and options, so results are byte-identical under
// any interleaving of tenants.
//
// Completed Results land in a content-addressed LRU cache keyed by
// (core.Fingerprint, core.OptionsDigest). Because every quditkit
// execution is deterministic in (processor seed, circuit, options), a
// cache hit is byte-identical to the re-simulation it replaces, so
// repeated submissions — the dominant pattern under heavy traffic —
// complete instantly without touching the simulator. Cached Results
// are shared across callers and must be treated as read-only.
//
// The same Service is exposed over JSON/HTTP by NewHandler (served by
// cmd/quditd); in-process callers use Enqueue/Await/Status/CancelJob
// and Stats directly.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/journal"
	"quditkit/internal/tenant"
)

// Service errors distinguishable by callers.
var (
	// ErrClosed is returned by Enqueue after Close has begun.
	ErrClosed = errors.New("serve: service closed")
	// ErrQueueFull is returned by Enqueue when the target shard's
	// bounded queue is at capacity — the backpressure signal.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrUnknownJob is returned for job IDs the service never issued.
	ErrUnknownJob = errors.New("serve: unknown job id")
	// ErrFinished is returned by CancelJob for jobs already settled.
	ErrFinished = errors.New("serve: job already finished")
)

// JobState is one stop in a job's lifecycle.
type JobState int

const (
	// Queued means the job sits in its shard's queue (or is being
	// batch-collected) and has not started executing.
	Queued JobState = iota
	// Running means a shard worker is executing the job.
	Running
	// Done means the job completed and its Result is available.
	Done
	// Failed means execution returned a non-cancellation error.
	Failed
	// Cancelled means the job was cancelled before or during execution.
	Cancelled
)

// String returns the state's stable lowercase name, used verbatim in
// the HTTP API.
func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// JobID identifies one enqueued job for Await/Status/CancelJob.
type JobID string

// Config sizes a Service. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Shards is the number of independent queue+worker pairs. Jobs are
	// assigned to shards by circuit fingerprint, so identical
	// submissions serialize onto one shard and dedupe against the
	// cache instead of re-simulating concurrently. Default 2.
	Shards int
	// QueueDepth bounds each shard's queue; Enqueue returns
	// ErrQueueFull beyond it rather than blocking. Default 64.
	QueueDepth int
	// BatchSize caps how many queued jobs a worker drains into one
	// Processor.Submit call. Default 8.
	BatchSize int
	// CacheSize bounds the result cache (LRU entries). Zero selects
	// the default 256; negative disables caching.
	CacheSize int
	// RetainJobs bounds how many settled job records the service keeps
	// for Status/Await lookups; beyond it the oldest settled jobs are
	// forgotten (their IDs then return ErrUnknownJob) so a long-lived
	// daemon's memory stays bounded. Zero selects the default 4096;
	// negative retains everything.
	RetainJobs int
	// Journal, when non-nil, makes admissions durable: EnqueueJournaled
	// fsyncs each accepted submission (ID + verbatim wire payload)
	// before it becomes runnable, settlements append tombstones, and
	// Replay restores unsettled jobs after a restart. Nil disables
	// durability; plain Enqueue never journals.
	Journal *journal.Journal
	// JournalCompactEvery is the WAL tail length (records) past which a
	// settlement triggers snapshot compaction. Default 256; negative
	// disables automatic compaction.
	JournalCompactEvery int
	// Tenants, when non-nil, turns on multi-tenant enforcement: the
	// HTTP layer requires a registered X-API-Key, admissions reserve
	// against per-tenant quotas, and shard scheduling weighs tenants
	// by their configured weight/priority. Nil runs single-tenant:
	// everything executes under one anonymous unlimited account.
	Tenants *tenant.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	switch {
	case c.CacheSize == 0:
		c.CacheSize = 256
	case c.CacheSize < 0:
		c.CacheSize = 0 // disabled
	}
	switch {
	case c.RetainJobs == 0:
		c.RetainJobs = 4096
	case c.RetainJobs < 0:
		c.RetainJobs = 0 // unlimited
	}
	switch {
	case c.JournalCompactEvery == 0:
		c.JournalCompactEvery = 256
	case c.JournalCompactEvery < 0:
		c.JournalCompactEvery = int(^uint(0) >> 1) // never
	}
	return c
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	// ID is the job's identifier.
	ID JobID
	// State is the lifecycle state at snapshot time.
	State JobState
	// Cached reports whether the job's Result came from the cache.
	Cached bool
	// Err is the terminal error of a Failed or Cancelled job.
	Err error
}

// Stats aggregates service counters for monitoring; served as JSON at
// GET /v1/stats.
type Stats struct {
	// Enqueued counts accepted submissions since startup.
	Enqueued uint64 `json:"enqueued"`
	// Completed counts jobs that reached Done.
	Completed uint64 `json:"completed"`
	// Failed counts jobs that reached Failed.
	Failed uint64 `json:"failed"`
	// Cancelled counts jobs that reached Cancelled.
	Cancelled uint64 `json:"cancelled"`
	// Queued and Running are the current in-flight populations.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// InflightShots sums the shot budgets of currently Running jobs —
	// the per-worker load gauge the cluster coordinator aggregates.
	InflightShots int64 `json:"inflight_shots"`
	// CacheHits, CacheMisses, and CacheEvictions are the result-cache
	// counters; CacheLen/CacheCap its current and maximum size.
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheLen       int    `json:"cache_len"`
	CacheCap       int    `json:"cache_cap"`
	// PlanCacheHits, PlanCacheMisses, and PlanCacheLen mirror the
	// process-wide compiled-execution-plan cache (core.PlanCacheStats):
	// repeated circuit content skips recompilation even when differing
	// options force a fresh simulation.
	PlanCacheHits   uint64 `json:"plan_cache_hits"`
	PlanCacheMisses uint64 `json:"plan_cache_misses"`
	PlanCacheLen    int    `json:"plan_cache_len"`
	// PlanCacheFusedPlans and PlanCacheFusedOps report gate-fusion
	// work (core.PlanCacheFusion): how many compiled plans fused at
	// least one same-target gate run, and how many logical ops those
	// runs absorbed into chained kernels.
	PlanCacheFusedPlans uint64 `json:"plan_cache_fused_plans"`
	PlanCacheFusedOps   uint64 `json:"plan_cache_fused_ops"`
	// Shards, QueueDepth, and BatchSize echo the resolved Config.
	Shards     int `json:"shards"`
	QueueDepth int `json:"queue_depth"`
	BatchSize  int `json:"batch_size"`
	// ShardDepths is the live queued-job count of each shard, in shard
	// order — the gauge that exposes hot shards (also served as the
	// queue_depth{shard="N"} series on /metrics).
	ShardDepths []int `json:"shard_depths"`
	// Tenants is the per-tenant usage: every registered tenant in file
	// order, then the anonymous account (in-process and unauthenticated
	// submissions).
	Tenants []tenant.Usage `json:"tenants,omitempty"`
	// Journal carries the write-ahead-log gauges (size, replay lag,
	// compaction cadence); nil when the service runs without a journal.
	Journal *JournalStats `json:"journal,omitempty"`
}

// job is the internal record of one submission.
type job struct {
	id     JobID
	circ   *circuit.Circuit
	opts   []core.RunOption
	key    cacheKey
	shots  int
	ctx    context.Context
	cancel context.CancelFunc
	// acct is the owning tenant's account (never nil — anonymous when
	// untenanted); reserved reports whether the job holds a quota
	// reservation (fast-path settlements never reserve).
	acct     *tenant.Account
	reserved bool

	mu     sync.Mutex
	state  JobState
	res    core.Result
	err    error
	cached bool
	done   chan struct{}
	// events records every state transition for replay; subs are the
	// live subscriber channels (see Subscribe in events.go).
	events []Event
	subs   []chan Event
}

// begin transitions a job Queued → Running, updating the population
// gauges; ok is false if the job already settled (e.g. cancelled while
// waiting in the queue). It returns the circuit and options snapshotted
// under the job mutex: finish nils those fields on settlement, so
// workers must use the snapshot, never read j.circ/j.opts unlocked.
// Gauge updates also happen under the mutex so they serialize with
// finish and never go transiently negative.
func (s *Service) begin(j *job) (circ *circuit.Circuit, opts []core.RunOption, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return nil, nil, false
	}
	j.state = Running
	s.queuedGauge.Add(-1)
	s.runningGauge.Add(1)
	s.inflightShots.Add(int64(j.shots))
	if j.reserved {
		j.acct.JobStarted()
	}
	j.publishLocked(Event{State: Running.String()})
	return j.circ, j.opts, true
}

// settled reports whether the job reached a terminal state.
func (s JobState) settled() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Service is the asynchronous job service over one core.Processor.
// Create it with New, submit with Enqueue, and stop it with Close. All
// methods are safe for concurrent use.
type Service struct {
	proc  *core.Processor
	cfg   Config
	cache *resultCache

	mu      sync.Mutex
	jobs    map[JobID]*job
	settled []JobID // settle order, for bounded retention
	nextID  uint64
	closed  bool
	// journaled maps each unsettled journaled job to its verbatim wire
	// payload and tenant — the working set the next compaction
	// snapshot folds in.
	journaled map[JobID]journaledJob

	shards []*shardQueue
	wg     sync.WaitGroup

	// anon is the fallback account for Enqueue callers that present no
	// tenant — one per Service, so accounting never bleeds across
	// independent instances (important under go test).
	anon *tenant.Account

	enqueued  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	// queuedGauge/runningGauge track the in-flight populations so
	// Stats stays O(1) instead of scanning the retained job table;
	// inflightShots sums the shot budgets of Running jobs, the load
	// signal the cluster coordinator reads per worker.
	queuedGauge   atomic.Int64
	runningGauge  atomic.Int64
	inflightShots atomic.Int64
	// journalLag mirrors len(journaled) atomically so Stats never takes
	// s.mu; journalReplayed is the count restored by Replay at startup.
	journalLag      atomic.Int64
	journalReplayed atomic.Int64
}

// New starts a Service over proc: one worker goroutine per shard,
// ready to accept Enqueue calls immediately.
func New(proc *core.Processor, cfg Config) (*Service, error) {
	if proc == nil {
		return nil, errors.New("serve: nil processor")
	}
	cfg = cfg.withDefaults()
	s := &Service{
		proc:      proc,
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheSize),
		jobs:      make(map[JobID]*job),
		journaled: make(map[JobID]journaledJob),
		anon:      tenant.NewAnonymous(),
	}
	s.shards = make([]*shardQueue, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShardQueue(i, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	return s, nil
}

// Processor returns the processor the service executes on, for callers
// that need to resolve request options (JobRequest.Options) against the
// same device the service runs — e.g. the experiment sweep layer.
func (s *Service) Processor() *core.Processor { return s.proc }

// Close stops the service gracefully: no new submissions are accepted,
// already-queued jobs drain to completion, and Close returns once
// every worker has exited. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, sh := range s.shards {
			sh.close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Enqueue submits a circuit with its run options and returns the job
// ID to Await on. A submission whose content address is already cached
// settles to Done immediately without entering the queue; otherwise it
// joins its shard's bounded queue, and Enqueue returns ErrQueueFull
// (issuing no job) when that queue is at capacity. A caller-supplied
// core.WithContext is honored: the job's internal context derives from
// it, so cancelling it aborts the job exactly like CancelJob.
func (s *Service) Enqueue(c *circuit.Circuit, opts ...core.RunOption) (JobID, error) {
	return s.enqueue(nil, nil, c, opts)
}

// EnqueueAs is Enqueue on behalf of a tenant account: admission
// reserves against the tenant's quotas (failing with
// tenant.ErrQuotaExceeded, wrapped with the violated limit) and the
// job competes in its tenant's weighted share of the shard. A nil
// acct selects the service's anonymous account.
func (s *Service) EnqueueAs(acct *tenant.Account, c *circuit.Circuit, opts ...core.RunOption) (JobID, error) {
	return s.enqueue(acct, nil, c, opts)
}

// enqueue implements Enqueue, EnqueueAs, and EnqueueJournaled; a
// non-nil payload with a configured journal selects the durable
// admission path.
func (s *Service) enqueue(acct *tenant.Account, payload []byte, c *circuit.Circuit, opts []core.RunOption) (JobID, error) {
	if c == nil {
		return "", errors.New("serve: nil circuit")
	}
	if acct == nil {
		acct = s.anon
	}
	key := cacheKey{fingerprint: core.Fingerprint(c), options: core.OptionsDigest(opts...)}
	base := context.Background()
	if userCtx := core.ContextOf(opts...); userCtx != nil {
		base = userCtx
	}
	ctx, cancel := context.WithCancel(base)
	j := &job{
		circ: c, opts: opts, key: key,
		shots: core.ShotsOf(opts...),
		ctx:   ctx, cancel: cancel,
		acct:  acct,
		state: Queued, done: make(chan struct{}),
		// The queued event is recorded at creation — no subscriber can
		// exist before the ID is issued, so no fan-out is needed.
		events: []Event{{Seq: 0, State: Queued.String()}},
	}

	// A caller context that is already cancelled settles Cancelled even
	// on the cache fast path, so the outcome of a cancelled submission
	// never depends on cache state.
	if err := ctx.Err(); err != nil {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			return "", ErrClosed
		}
		id := s.issueIDLocked(j)
		s.mu.Unlock()
		s.queuedGauge.Add(1)
		s.enqueued.Add(1)
		acct.NoteBypass()
		s.finish(j, core.Result{}, err, false)
		return id, nil
	}

	if res, ok := s.cache.get(key); ok {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			return "", ErrClosed
		}
		id := s.issueIDLocked(j)
		s.mu.Unlock()
		s.queuedGauge.Add(1)
		s.enqueued.Add(1)
		acct.NoteBypass()
		s.finish(j, res, nil, true)
		return id, nil
	}

	// A rejected submission is never published to the job table, so
	// the reject paths below cannot race a concurrent CancelJob and
	// the gauges move exactly once per accepted job. All pushes happen
	// under s.mu (workers only pop), so the capacity check here makes
	// the later forcePush safe: depth can only shrink in between.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	sh := s.shards[key.fingerprint%uint64(len(s.shards))]
	if sh.full() {
		s.mu.Unlock()
		cancel()
		return "", queueFullError(sh)
	}
	if err := acct.TryAdmitJob(j.shots); err != nil {
		s.mu.Unlock()
		cancel()
		return "", err
	}
	j.reserved = true
	if payload != nil && s.cfg.Journal != nil {
		return s.admitJournaledLocked(sh, j, payload)
	}
	id := s.issueIDLocked(j)
	s.queuedGauge.Add(1)
	sh.forcePush(j)
	s.mu.Unlock()
	// Counted only here and on the fast paths, so Enqueued reflects
	// accepted submissions, never rejected ones.
	s.enqueued.Add(1)
	return id, nil
}

// queueFullError wraps ErrQueueFull with the rejecting shard and its
// depth, so operators can spot a hot shard straight from the error.
func queueFullError(sh *shardQueue) error {
	return fmt.Errorf("%w: shard %d at depth %d/%d", ErrQueueFull, sh.index, sh.len(), sh.cap)
}

// issueIDLocked assigns the next job ID and publishes the record;
// callers hold s.mu.
func (s *Service) issueIDLocked(j *job) JobID {
	s.nextID++
	id := JobID(fmt.Sprintf("j-%06d", s.nextID))
	j.id = id
	s.jobs[id] = j
	return id
}

// Await blocks until the job settles or ctx expires, returning the
// job's Result (read-only when cached) or its terminal error.
func (s *Service) Await(ctx context.Context, id JobID) (core.Result, error) {
	j, err := s.job(id)
	if err != nil {
		return core.Result{}, err
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.res, j.err
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	}
}

// Status returns a snapshot of the job's lifecycle state.
func (s *Service) Status(id JobID) (JobStatus, error) {
	j, err := s.job(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state, Cached: j.cached, Err: j.err}, nil
}

// CancelJob aborts a job: a queued job settles to Cancelled
// immediately, a running one promptly (its context is cancelled and
// the trajectory backend polls it between shots). ErrFinished reports
// a job that already settled.
func (s *Service) CancelJob(id JobID) error {
	j, err := s.job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.state.settled() {
		j.mu.Unlock()
		return ErrFinished
	}
	queued := j.state == Queued
	j.mu.Unlock()

	j.cancel()
	if queued {
		// Settle immediately. If a worker won the race and began the
		// job, this still settles it as Cancelled (finish is
		// first-writer-wins, not a no-op) and the cancelled context
		// ends the in-flight run promptly; the worker's own finish
		// then finds the job settled and does nothing.
		s.finish(j, core.Result{}, context.Canceled, false)
	}
	return nil
}

// Stats returns current service counters. It reads atomic gauges and
// the cache counters — O(1), never blocking the intake path — plus,
// when a journal is configured, the journal's own gauge mutex (held
// only for field copies, never across an fsync).
func (s *Service) Stats() Stats {
	hits, misses, evictions := s.cache.counters()
	planHits, planMisses, planLen := core.PlanCacheStats()
	fusedPlans, fusedOps := core.PlanCacheFusion()
	queued := int(s.queuedGauge.Load())
	running := int(s.runningGauge.Load())
	var js *JournalStats
	if s.cfg.Journal != nil {
		js = &JournalStats{
			Stats:    s.cfg.Journal.Stats(),
			Lag:      int(s.journalLag.Load()),
			Replayed: s.journalReplayed.Load(),
		}
	}
	depths := make([]int, len(s.shards))
	for i, sh := range s.shards {
		depths[i] = sh.len()
	}
	return Stats{
		Enqueued:            s.enqueued.Load(),
		Completed:           s.completed.Load(),
		Failed:              s.failed.Load(),
		Cancelled:           s.cancelled.Load(),
		Queued:              queued,
		Running:             running,
		InflightShots:       s.inflightShots.Load(),
		CacheHits:           hits,
		CacheMisses:         misses,
		CacheEvictions:      evictions,
		CacheLen:            s.cache.len(),
		CacheCap:            s.cfg.CacheSize,
		PlanCacheHits:       planHits,
		PlanCacheMisses:     planMisses,
		PlanCacheLen:        planLen,
		PlanCacheFusedPlans: fusedPlans,
		PlanCacheFusedOps:   fusedOps,
		Shards:              s.cfg.Shards,
		QueueDepth:          s.cfg.QueueDepth,
		BatchSize:           s.cfg.BatchSize,
		ShardDepths:         depths,
		Tenants:             s.tenantUsage(),
		Journal:             js,
	}
}

// tenantUsage snapshots every account the service can execute for:
// registered tenants in file order, then the service's anonymous
// account.
func (s *Service) tenantUsage() []tenant.Usage {
	var out []tenant.Usage
	if s.cfg.Tenants != nil {
		for _, a := range s.cfg.Tenants.Accounts() {
			out = append(out, a.Snapshot())
		}
	}
	out = append(out, s.anon.Snapshot())
	return out
}

// Anonymous returns the service's fallback account — what plain
// Enqueue submissions run as. Callers that pre-resolve accounts (the
// sweep layer, tests) use it to label work explicitly.
func (s *Service) Anonymous() *tenant.Account { return s.anon }

// Tenants returns the configured registry, or nil when the service
// runs single-tenant.
func (s *Service) Tenants() *tenant.Registry { return s.cfg.Tenants }

// job looks up a job record by ID.
func (s *Service) job(id JobID) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// finish settles a job exactly once, releasing its context and
// bumping the terminal-state counter. Later calls are no-ops, which is
// what resolves cancel-vs-complete races.
func (s *Service) finish(j *job, res core.Result, err error, cached bool) {
	j.mu.Lock()
	if j.state.settled() {
		j.mu.Unlock()
		return
	}
	prev := j.state
	j.res, j.err, j.cached = res, err, cached
	// Nothing reads the circuit or options after settlement; dropping
	// them keeps retained job records from pinning gate unitaries.
	j.circ, j.opts = nil, nil
	switch {
	case err == nil:
		j.state = Done
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = Cancelled
	default:
		j.state = Failed
	}
	terminal := j.state
	switch prev {
	case Queued:
		s.queuedGauge.Add(-1)
	case Running:
		s.runningGauge.Add(-1)
		s.inflightShots.Add(-int64(j.shots))
	}
	j.publishLocked(j.terminalEventLocked())
	close(j.done)
	j.mu.Unlock()
	j.cancel()
	var oc tenant.Outcome
	switch terminal {
	case Done:
		s.completed.Add(1)
		oc = tenant.Completed
	case Cancelled:
		s.cancelled.Add(1)
		oc = tenant.Cancelled
	default:
		s.failed.Add(1)
		oc = tenant.Failed
	}
	if j.acct != nil {
		j.acct.JobSettled(prev == Running, j.reserved, j.shots, oc)
	}
	s.journalSettle(j.id, terminal)
	s.retain(j.id)
}

// retain records a settled job and prunes the oldest settled records
// past the RetainJobs bound, so the job table cannot grow without
// bound under sustained traffic. Callers already awaiting a pruned job
// keep their reference; only fresh ID lookups forget it.
func (s *Service) retain(id JobID) {
	if s.cfg.RetainJobs == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.settled = append(s.settled, id)
	for len(s.settled) > s.cfg.RetainJobs {
		delete(s.jobs, s.settled[0])
		s.settled = s.settled[1:]
	}
}

// worker drains one shard: it blocks for the first job, greedily
// collects up to BatchSize-1 more without blocking (each dequeue
// scheduled by the shard's weighted round-robin), and runs the batch
// through Processor.Submit.
func (s *Service) worker(sh *shardQueue) {
	defer s.wg.Done()
	for {
		j, ok := sh.pop()
		if !ok {
			return
		}
		batch := []*job{j}
		for len(batch) < s.cfg.BatchSize {
			next, ok := sh.tryPop()
			if !ok {
				break
			}
			batch = append(batch, next)
		}
		s.runBatch(batch)
	}
}

// runBatch executes one drained batch: cancelled jobs are skipped,
// cache hits settle instantly, in-batch duplicates collapse onto one
// representative run, and the remainder goes through Processor.Submit
// in a single call (falling back to per-job submission on error, so
// one failing job cannot doom its batchmates).
func (s *Service) runBatch(batch []*job) {
	// runItem pairs a begun job with the circuit/options snapshot taken
	// under its mutex: finish nils those fields on settlement, so all
	// post-begin access goes through the snapshot.
	type runItem struct {
		j    *job
		circ *circuit.Circuit
		opts []core.RunOption
	}
	reps := make(map[cacheKey]runItem)
	dups := make(map[cacheKey][]runItem)
	var run []runItem
	for _, j := range batch {
		circ, opts, ok := s.begin(j)
		if !ok {
			continue // settled while queued (cancelled)
		}
		if err := j.ctx.Err(); err != nil {
			s.finish(j, core.Result{}, err, false)
			continue
		}
		if res, ok := s.cache.peek(j.key); ok {
			s.finish(j, res, nil, true)
			continue
		}
		it := runItem{j: j, circ: circ, opts: opts}
		if _, ok := reps[j.key]; ok {
			dups[j.key] = append(dups[j.key], it)
			continue
		}
		reps[j.key] = it
		run = append(run, it)
	}

	withCtx := func(it runItem) core.Job {
		opts := make([]core.RunOption, 0, len(it.opts)+1)
		opts = append(opts, it.opts...)
		opts = append(opts, core.WithContext(it.j.ctx))
		return core.NewJob(it.circ, opts...)
	}

	if len(run) > 0 {
		coreJobs := make([]core.Job, len(run))
		for i, it := range run {
			coreJobs[i] = withCtx(it)
		}
		// Submit stops at the first failing job, returning the prefix
		// of completed Results plus the failing index (core.JobError).
		// Settle the prefix, fail that one job, and resume after it —
		// no batchmate is ever simulated twice.
		remaining := run
		jobsLeft := coreJobs
		for len(remaining) > 0 {
			results, err := s.proc.Submit(jobsLeft...)
			for i, res := range results {
				s.cache.put(remaining[i].j.key, res)
				s.finish(remaining[i].j, res, nil, false)
			}
			if err == nil {
				break
			}
			var je *core.JobError
			if !errors.As(err, &je) || je.Index >= len(remaining) {
				// No index attribution available: fail whatever the
				// prefix didn't cover.
				for _, it := range remaining[len(results):] {
					s.finish(it.j, core.Result{}, err, false)
				}
				break
			}
			s.finish(remaining[je.Index].j, core.Result{}, je.Err, false)
			remaining = remaining[je.Index+1:]
			jobsLeft = jobsLeft[je.Index+1:]
		}
	}

	for key, waiting := range dups {
		rep := reps[key].j
		rep.mu.Lock()
		repRes, repErr := rep.res, rep.err
		rep.mu.Unlock()
		for _, d := range waiting {
			// A duplicate's own context was never in the representative
			// run; honor a cancellation that arrived meanwhile instead
			// of settling the job Done after an acknowledged cancel.
			if err := d.j.ctx.Err(); err != nil {
				s.finish(d.j, core.Result{}, err, false)
				continue
			}
			if repErr != nil {
				// The representative failed or was cancelled; its
				// outcome is not this job's. Run the duplicate on its
				// own context instead of inheriting it.
				rs, jerr := s.proc.Submit(withCtx(d))
				if jerr != nil {
					s.finish(d.j, core.Result{}, jerr, false)
					continue
				}
				s.cache.put(d.j.key, rs[0])
				s.finish(d.j, rs[0], nil, false)
				continue
			}
			if res, ok := s.cache.peek(d.j.key); ok {
				s.finish(d.j, res, nil, true)
			} else {
				// Cache disabled: share the representative's result but
				// don't claim a cache hit that no cache served.
				s.finish(d.j, repRes, nil, false)
			}
		}
	}
}
