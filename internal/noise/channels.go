// Package noise provides the error models of the near-term cavity
// processor: qudit Kraus channels (depolarizing, dephasing, photon-loss
// amplitude damping), a per-gate noise model applied during circuit
// execution, and a Lindblad master-equation integrator for continuous
// dissipative dynamics (used by the reservoir-computing application).
package noise

import (
	"fmt"
	"math"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

// Channel is a CPTP map given by its Kraus operators on a d-dimensional
// local space.
type Channel struct {
	Name  string
	Dim   int
	Kraus []*qmath.Matrix
}

// CheckCPTP verifies the Kraus completeness relation sum K†K = I within
// tol.
func (c Channel) CheckCPTP(tol float64) error {
	if len(c.Kraus) == 0 {
		return fmt.Errorf("channel %s: no Kraus operators", c.Name)
	}
	acc := qmath.NewMatrix(c.Dim, c.Dim)
	for i, k := range c.Kraus {
		if k.Rows != c.Dim || k.Cols != c.Dim {
			return fmt.Errorf("channel %s: Kraus %d is %dx%d, want %dx%d", c.Name, i, k.Rows, k.Cols, c.Dim, c.Dim)
		}
		acc.AddInPlace(k.Dagger().Mul(k))
	}
	if !acc.ApproxEqual(qmath.Identity(c.Dim), tol) {
		return fmt.Errorf("channel %s: sum K†K deviates from identity by %g",
			c.Name, acc.Sub(qmath.Identity(c.Dim)).MaxAbs())
	}
	return nil
}

// IdentityChannel returns the trivial channel on dimension d.
func IdentityChannel(d int) Channel {
	return Channel{Name: "id", Dim: d, Kraus: []*qmath.Matrix{qmath.Identity(d)}}
}

// Depolarizing returns the qudit depolarizing channel
//
//	rho -> (1-p) rho + p I/d,
//
// realized with the d^2 Weyl (generalized Pauli) operators X^a Z^b.
func Depolarizing(d int, p float64) Channel {
	x := gates.X(d).Matrix
	z := gates.Z(d).Matrix
	ks := make([]*qmath.Matrix, 0, d*d)
	w := math.Sqrt(p) / float64(d)
	// Identity component keeps weight 1 - p + p/d^2.
	id := qmath.Identity(d).Scale(complex(math.Sqrt(1-p+p/float64(d*d)), 0))
	ks = append(ks, id)
	xa := qmath.Identity(d)
	for a := 0; a < d; a++ {
		zb := qmath.Identity(d)
		for b := 0; b < d; b++ {
			if a != 0 || b != 0 {
				ks = append(ks, xa.Mul(zb).Scale(complex(w, 0)))
			}
			zb = zb.Mul(z)
		}
		xa = xa.Mul(x)
	}
	return Channel{Name: fmt.Sprintf("depol%d(%.2e)", d, p), Dim: d, Kraus: ks}
}

// Dephasing returns the qudit phase-noise channel
//
//	rho -> (1-p) rho + (p/d) sum_a Z^a rho Z^{-a},
//
// which damps coherences between distinct levels while preserving
// populations — the discrete analogue of T2 noise.
func Dephasing(d int, p float64) Channel {
	z := gates.Z(d).Matrix
	ks := make([]*qmath.Matrix, 0, d)
	ks = append(ks, qmath.Identity(d).Scale(complex(math.Sqrt(1-p+p/float64(d)), 0)))
	w := complex(math.Sqrt(p/float64(d)), 0)
	za := qmath.Identity(d)
	for a := 1; a < d; a++ {
		za = za.Mul(z)
		ks = append(ks, za.Scale(w))
	}
	return Channel{Name: fmt.Sprintf("dephase%d(%.2e)", d, p), Dim: d, Kraus: ks}
}

// AmplitudeDamping returns the exact pure-loss (photon decay) channel on a
// d-level Fock space with per-photon loss probability gamma = 1 -
// e^{-kappa t}. Its Kraus operators are
//
//	K_k = sum_n sqrt(C(n,k) (1-gamma)^{n-k} gamma^k) |n-k><n|.
//
// This is the dominant error of cavity qudits and the attractor used by
// NDAR: it drags population toward the vacuum |0>.
func AmplitudeDamping(d int, gamma float64) Channel {
	ks := make([]*qmath.Matrix, d)
	for k := 0; k < d; k++ {
		m := qmath.NewMatrix(d, d)
		for n := k; n < d; n++ {
			c := binomial(n, k) * math.Pow(1-gamma, float64(n-k)) * math.Pow(gamma, float64(k))
			m.Set(n-k, n, complex(math.Sqrt(c), 0))
		}
		ks[k] = m
	}
	return Channel{Name: fmt.Sprintf("damp%d(%.2e)", d, gamma), Dim: d, Kraus: ks}
}

// ThermalExcitation returns a weak heating channel that promotes |n> to
// |n+1> with probability p*(n+1)/d — a coarse model of residual thermal
// photons in the cavity environment.
func ThermalExcitation(d int, p float64) Channel {
	k1 := qmath.NewMatrix(d, d)
	k0 := qmath.NewMatrix(d, d)
	for n := 0; n < d; n++ {
		q := p * float64(n+1) / float64(d)
		if n+1 < d {
			k1.Set(n+1, n, complex(math.Sqrt(q), 0))
			k0.Set(n, n, complex(math.Sqrt(1-q), 0))
		} else {
			k0.Set(n, n, 1) // top level cannot be excited under truncation
		}
	}
	return Channel{Name: fmt.Sprintf("heat%d(%.2e)", d, p), Dim: d, Kraus: []*qmath.Matrix{k0, k1}}
}

// Leakage models imperfect confinement to the computational levels of a
// larger physical space: population in levels >= dLogical is symmetrically
// mixed back with rate p. On a register already truncated to the logical
// dimension this reduces to dephasing on the top level; we expose it for
// completeness of the error budget.
func Leakage(d int, p float64) Channel {
	k0 := qmath.Identity(d)
	top := d - 1
	k0.Set(top, top, complex(math.Sqrt(1-p), 0))
	k1 := qmath.NewMatrix(d, d)
	k1.Set(top, top, complex(math.Sqrt(p), 0))
	return Channel{Name: fmt.Sprintf("leak%d(%.2e)", d, p), Dim: d, Kraus: []*qmath.Matrix{k0, k1}}
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}
