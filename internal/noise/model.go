package noise

// Model is the per-gate error model applied during noisy circuit
// execution. Probabilities are per gate application, per target wire.
// The zero value is the noiseless model.
type Model struct {
	// Depol1 is the depolarizing probability applied to each wire touched
	// by a single-qudit gate.
	Depol1 float64
	// Depol2 is the depolarizing probability applied to each wire touched
	// by a multi-qudit gate (entanglers are harder, so typically
	// Depol2 >> Depol1).
	Depol2 float64
	// Damping is the photon-loss probability applied to every touched wire
	// after each gate (cavity T1 during the gate time).
	Damping float64
	// Dephasing is the phase-noise probability applied to every touched
	// wire after each gate (T2 contribution).
	Dephasing float64
	// IdleDamping and IdleDephasing, when positive, are applied to idle
	// (untouched) wires once per circuit moment, modeling decoherence
	// while other qudits are being driven.
	IdleDamping   float64
	IdleDephasing float64
}

// IsZero reports whether the model is exactly noiseless.
func (m Model) IsZero() bool {
	return m == Model{}
}

// ScaleGateError returns a copy of m with the gate-induced error
// probabilities multiplied by f (clamped to [0, 1]); idle rates are
// unchanged. Used by the error-rate sweeps in the experiments.
func (m Model) ScaleGateError(f float64) Model {
	out := m
	out.Depol1 = clamp01(m.Depol1 * f)
	out.Depol2 = clamp01(m.Depol2 * f)
	out.Damping = clamp01(m.Damping * f)
	out.Dephasing = clamp01(m.Dephasing * f)
	return out
}

// WithIdle returns a copy of m with the idle-decoherence rates set.
// Idle channels are applied to untouched wires once per circuit moment;
// the transpiler's noise-annotation pass uses this to extend a
// gate-error model with the spectator decoherence the device's T1/T2
// imply over one gate duration.
func (m Model) WithIdle(damping, dephasing float64) Model {
	out := m
	out.IdleDamping = clamp01(damping)
	out.IdleDephasing = clamp01(dephasing)
	return out
}

// GateChannels returns the channels to apply to a wire of dimension d
// after a gate of the given arity. A nil slice means no noise.
func (m Model) GateChannels(d, arity int) []Channel {
	if m.IsZero() {
		return nil
	}
	var out []Channel
	depol := m.Depol1
	if arity > 1 {
		depol = m.Depol2
	}
	if depol > 0 {
		out = append(out, Depolarizing(d, depol))
	}
	if m.Damping > 0 {
		out = append(out, AmplitudeDamping(d, m.Damping))
	}
	if m.Dephasing > 0 {
		out = append(out, Dephasing(d, m.Dephasing))
	}
	return out
}

// IdleChannels returns the channels applied to an idle wire of dimension d
// during one circuit moment.
func (m Model) IdleChannels(d int) []Channel {
	var out []Channel
	if m.IdleDamping > 0 {
		out = append(out, AmplitudeDamping(d, m.IdleDamping))
	}
	if m.IdleDephasing > 0 {
		out = append(out, Dephasing(d, m.IdleDephasing))
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
