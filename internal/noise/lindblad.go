package noise

import (
	"fmt"

	"quditkit/internal/qmath"
)

// Lindblad integrates the master equation
//
//	d rho/dt = -i [H(t), rho] + sum_i ( L_i rho L_i† - 1/2 {L_i† L_i, rho} )
//
// with classical RK4. Collapse operators carry their rates folded in
// (L = sqrt(kappa) a for photon loss at rate kappa). The integrator is the
// continuous-time substrate for the dissipative reservoir dynamics of the
// QRC application and for gate-time decoherence budgets.
type Lindblad struct {
	// H is the (time-independent) Hamiltonian; ignored if HFunc is set.
	H *qmath.Matrix
	// HFunc, when non-nil, supplies a time-dependent Hamiltonian H(t).
	HFunc func(t float64) *qmath.Matrix
	// Collapse lists the Lindblad jump operators with rates folded in.
	Collapse []*qmath.Matrix

	// precomputed L†L/2 per collapse operator
	halfLdagL []*qmath.Matrix
}

// NewLindblad builds an integrator for a fixed Hamiltonian and collapse
// set, validating shapes.
func NewLindblad(h *qmath.Matrix, collapse []*qmath.Matrix) (*Lindblad, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("noise: Hamiltonian must be square, got %dx%d", h.Rows, h.Cols)
	}
	l := &Lindblad{H: h, Collapse: collapse}
	if err := l.prepare(h.Rows); err != nil {
		return nil, err
	}
	return l, nil
}

// NewLindbladDriven builds an integrator with a time-dependent Hamiltonian
// of fixed dimension dim.
func NewLindbladDriven(dim int, hfunc func(t float64) *qmath.Matrix, collapse []*qmath.Matrix) (*Lindblad, error) {
	if hfunc == nil {
		return nil, fmt.Errorf("noise: nil Hamiltonian function")
	}
	l := &Lindblad{HFunc: hfunc, Collapse: collapse}
	if err := l.prepare(dim); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Lindblad) prepare(dim int) error {
	l.halfLdagL = make([]*qmath.Matrix, len(l.Collapse))
	for i, c := range l.Collapse {
		if c.Rows != dim || c.Cols != dim {
			return fmt.Errorf("noise: collapse op %d is %dx%d, want %dx%d", i, c.Rows, c.Cols, dim, dim)
		}
		l.halfLdagL[i] = c.Dagger().Mul(c).Scale(0.5)
	}
	return nil
}

func (l *Lindblad) hamiltonianAt(t float64) *qmath.Matrix {
	if l.HFunc != nil {
		return l.HFunc(t)
	}
	return l.H
}

// Derivative returns d rho/dt at time t.
func (l *Lindblad) Derivative(t float64, rho *qmath.Matrix) *qmath.Matrix {
	h := l.hamiltonianAt(t)
	// -i [H, rho]
	comm := h.Mul(rho).Sub(rho.Mul(h)).Scale(complex(0, -1))
	for i, c := range l.Collapse {
		// L rho L†
		comm.AddInPlace(c.Mul(rho).Mul(c.Dagger()))
		// -1/2 {L†L, rho}
		half := l.halfLdagL[i]
		comm.AddScaledInPlace(-1, half.Mul(rho))
		comm.AddScaledInPlace(-1, rho.Mul(half))
	}
	return comm
}

// Step advances rho by one RK4 step of size dt starting at time t,
// returning the new state.
func (l *Lindblad) Step(t, dt float64, rho *qmath.Matrix) *qmath.Matrix {
	k1 := l.Derivative(t, rho)
	r2 := rho.Clone()
	r2.AddScaledInPlace(complex(dt/2, 0), k1)
	k2 := l.Derivative(t+dt/2, r2)
	r3 := rho.Clone()
	r3.AddScaledInPlace(complex(dt/2, 0), k2)
	k3 := l.Derivative(t+dt/2, r3)
	r4 := rho.Clone()
	r4.AddScaledInPlace(complex(dt, 0), k3)
	k4 := l.Derivative(t+dt, r4)

	out := rho.Clone()
	out.AddScaledInPlace(complex(dt/6, 0), k1)
	out.AddScaledInPlace(complex(dt/3, 0), k2)
	out.AddScaledInPlace(complex(dt/3, 0), k3)
	out.AddScaledInPlace(complex(dt/6, 0), k4)
	return out
}

// Evolve integrates rho from time t0 over a duration with the given number
// of RK4 steps and returns the final state. rho is not modified.
func (l *Lindblad) Evolve(t0, duration float64, steps int, rho *qmath.Matrix) (*qmath.Matrix, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("noise: steps must be positive, got %d", steps)
	}
	dt := duration / float64(steps)
	cur := rho.Clone()
	t := t0
	for s := 0; s < steps; s++ {
		cur = l.Step(t, dt, cur)
		t += dt
	}
	return cur, nil
}
