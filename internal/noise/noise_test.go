package noise

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quditkit/internal/density"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

func TestChannelsAreCPTP(t *testing.T) {
	dims := []int{2, 3, 4, 8}
	probs := []float64{0, 0.01, 0.3, 1}
	for _, d := range dims {
		for _, p := range probs {
			for _, ch := range []Channel{
				Depolarizing(d, p),
				Dephasing(d, p),
				AmplitudeDamping(d, p),
				ThermalExcitation(d, p),
				Leakage(d, p),
				IdentityChannel(d),
			} {
				if err := ch.CheckCPTP(1e-9); err != nil {
					t.Errorf("d=%d p=%v: %v", d, p, err)
				}
			}
		}
	}
}

func TestDepolarizingDrivesToMaximallyMixed(t *testing.T) {
	d := 3
	ch := Depolarizing(d, 1)
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d; i++ {
		if math.Abs(real(r.At(i, i))-1/float64(d)) > 1e-9 {
			t.Errorf("population %d = %v, want 1/3", i, real(r.At(i, i)))
		}
	}
}

func TestDepolarizingPartial(t *testing.T) {
	// p=0.3 mixes 30% of the state with I/d.
	d, p := 4, 0.3
	ch := Depolarizing(d, p)
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	want := (1 - p) + p/float64(d)
	if math.Abs(real(r.At(0, 0))-want) > 1e-9 {
		t.Errorf("rho00 = %v, want %v", real(r.At(0, 0)), want)
	}
}

func TestDephasingKillsCoherencesKeepsPopulations(t *testing.T) {
	d := 3
	// Superposition (|0> + |1> + |2>)/sqrt3.
	amps := qmath.Vector{1, 1, 1}
	r, err := density.FromPureAmplitudes(hilbert.Dims{d}, amps)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Probabilities()
	ch := Dephasing(d, 1)
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	after := r.Probabilities()
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Errorf("population %d changed: %v -> %v", i, before[i], after[i])
		}
	}
	// Full dephasing removes all coherences.
	if cmplx.Abs(r.At(0, 1)) > 1e-9 || cmplx.Abs(r.At(1, 2)) > 1e-9 {
		t.Error("coherences survived full dephasing")
	}
}

func TestAmplitudeDampingVacuumAttractor(t *testing.T) {
	d := 5
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.XPow(d, d-1), 0); err != nil { // |d-1>
		t.Fatal(err)
	}
	ch := AmplitudeDamping(d, 0.5)
	for i := 0; i < 40; i++ {
		if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if real(r.At(0, 0)) < 0.999 {
		t.Errorf("damping did not reach vacuum: p0 = %v", real(r.At(0, 0)))
	}
}

func TestAmplitudeDampingMeanPhotonDecay(t *testing.T) {
	d := 8
	gamma := 0.2
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.XPow(d, 4), 0); err != nil { // |4>
		t.Fatal(err)
	}
	ch := AmplitudeDamping(d, gamma)
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	n := gates.Number(d)
	got, err := r.Expectation(n, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * (1 - gamma)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("<n> after loss = %v, want %v", got, want)
	}
}

func TestModelZero(t *testing.T) {
	var m Model
	if !m.IsZero() {
		t.Error("zero model not detected")
	}
	if m.GateChannels(3, 1) != nil {
		t.Error("zero model produced channels")
	}
}

func TestModelGateChannels(t *testing.T) {
	m := Model{Depol1: 0.001, Depol2: 0.01, Damping: 0.002}
	ch1 := m.GateChannels(3, 1)
	ch2 := m.GateChannels(3, 2)
	if len(ch1) != 2 || len(ch2) != 2 {
		t.Fatalf("channel counts: %d, %d", len(ch1), len(ch2))
	}
	// All channels must be CPTP.
	for _, ch := range append(ch1, ch2...) {
		if err := ch.CheckCPTP(1e-9); err != nil {
			t.Error(err)
		}
	}
}

func TestModelScale(t *testing.T) {
	m := Model{Depol1: 0.1, Depol2: 0.2, IdleDamping: 0.05}
	s := m.ScaleGateError(2)
	if s.Depol1 != 0.2 || s.Depol2 != 0.4 {
		t.Errorf("scaled = %+v", s)
	}
	if s.IdleDamping != 0.05 {
		t.Error("idle rates should not scale")
	}
	// Clamp.
	big := m.ScaleGateError(100)
	if big.Depol2 > 1 {
		t.Error("probability not clamped")
	}
}

func TestLindbladPureDecay(t *testing.T) {
	// H = 0, L = sqrt(kappa) a: <n>(t) = n0 exp(-kappa t).
	d := 6
	kappa := 0.8
	a := gates.Lower(d).Scale(complex(math.Sqrt(kappa), 0))
	l, err := NewLindblad(qmath.NewMatrix(d, d), []*qmath.Matrix{a})
	if err != nil {
		t.Fatal(err)
	}
	// Start in |3>.
	rho := qmath.NewMatrix(d, d)
	rho.Set(3, 3, 1)
	tEnd := 1.0
	out, err := l.Evolve(0, tEnd, 200, rho)
	if err != nil {
		t.Fatal(err)
	}
	n := gates.Number(d)
	got := real(out.Mul(n).Trace())
	want := 3 * math.Exp(-kappa*tEnd)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("<n>(t) = %v, want %v", got, want)
	}
	// Trace preserved.
	if math.Abs(real(out.Trace())-1) > 1e-6 {
		t.Errorf("trace = %v", out.Trace())
	}
}

func TestLindbladUnitaryLimit(t *testing.T) {
	// No collapse operators: must match exact unitary evolution.
	rng := rand.New(rand.NewSource(23))
	d := 4
	h := qmath.RandomHermitian(rng, d)
	l, err := NewLindblad(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	psi := qmath.RandomState(rng, d)
	rho := psi.Outer(psi)
	tEnd := 0.7
	out, err := l.Evolve(0, tEnd, 400, rho)
	if err != nil {
		t.Fatal(err)
	}
	u, err := qmath.ExpHermitian(h, complex(0, -tEnd))
	if err != nil {
		t.Fatal(err)
	}
	wantPsi := u.MulVec(psi)
	want := wantPsi.Outer(wantPsi)
	if !out.ApproxEqual(want, 1e-5) {
		t.Errorf("Lindblad unitary limit error %v", out.Sub(want).FrobeniusNorm())
	}
}

func TestLindbladHermiticityPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	d := 4
	h := qmath.RandomHermitian(rng, d)
	a := gates.Lower(d).Scale(complex(0.3, 0))
	l, err := NewLindblad(h, []*qmath.Matrix{a})
	if err != nil {
		t.Fatal(err)
	}
	rho := qmath.RandomDensityMatrix(rng, d)
	out, err := l.Evolve(0, 2.0, 300, rho)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsHermitian(1e-7) {
		t.Error("Hermiticity lost during integration")
	}
	if math.Abs(real(out.Trace())-1) > 1e-6 {
		t.Errorf("trace drifted: %v", out.Trace())
	}
}

func TestLindbladDriven(t *testing.T) {
	// Time-dependent drive on a qubit: H(t) = eps(t) sigma_x with a short
	// pulse; population must move out of |0>.
	d := 2
	sx := gates.X(2).Matrix
	hf := func(t float64) *qmath.Matrix {
		amp := 0.0
		if t < 1 {
			amp = math.Pi / 4
		}
		return sx.Scale(complex(amp, 0))
	}
	l, err := NewLindbladDriven(d, hf, nil)
	if err != nil {
		t.Fatal(err)
	}
	rho := qmath.NewMatrix(d, d)
	rho.Set(0, 0, 1)
	out, err := l.Evolve(0, 2.0, 400, rho)
	if err != nil {
		t.Fatal(err)
	}
	// After the pulse, theta = 2 * (pi/4) * 1 rotation: p1 = sin^2(pi/4) = 0.5.
	if math.Abs(real(out.At(1, 1))-0.5) > 1e-3 {
		t.Errorf("driven population = %v, want 0.5", real(out.At(1, 1)))
	}
}

func TestLindbladValidation(t *testing.T) {
	if _, err := NewLindblad(qmath.NewMatrix(2, 3), nil); err == nil {
		t.Error("non-square H accepted")
	}
	if _, err := NewLindblad(qmath.Identity(2), []*qmath.Matrix{qmath.Identity(3)}); err == nil {
		t.Error("mismatched collapse accepted")
	}
	if _, err := NewLindbladDriven(2, nil, nil); err == nil {
		t.Error("nil HFunc accepted")
	}
	l, _ := NewLindblad(qmath.Identity(2), nil)
	if _, err := l.Evolve(0, 1, 0, qmath.Identity(2)); err == nil {
		t.Error("zero steps accepted")
	}
}
