package noise

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

func TestSparseLindbladMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 5
	h := qmath.RandomHermitian(rng, d)
	a := gates.Lower(d).Scale(complex(0.4, 0))
	dense, err := NewLindblad(h, []*qmath.Matrix{a})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseLindblad(h, []*qmath.Matrix{a})
	if err != nil {
		t.Fatal(err)
	}
	rho := qmath.RandomDensityMatrix(rng, d)
	outD, err := dense.Evolve(0, 1.5, 150, rho)
	if err != nil {
		t.Fatal(err)
	}
	outS, err := sparse.Evolve(1.5, 150, rho)
	if err != nil {
		t.Fatal(err)
	}
	if !outS.ApproxEqual(outD, 1e-9) {
		t.Errorf("sparse and dense integrators diverge by %v", outS.Sub(outD).FrobeniusNorm())
	}
}

func TestSparseLindbladDecay(t *testing.T) {
	d := 6
	kappa := 0.5
	a := gates.Lower(d).Scale(complex(math.Sqrt(kappa), 0))
	l, err := NewSparseLindblad(qmath.NewMatrix(d, d), []*qmath.Matrix{a})
	if err != nil {
		t.Fatal(err)
	}
	rho := qmath.NewMatrix(d, d)
	rho.Set(4, 4, 1)
	out, err := l.Evolve(2.0, 400, rho)
	if err != nil {
		t.Fatal(err)
	}
	n := gates.Number(d)
	got := real(out.Mul(n).Trace())
	want := 4 * math.Exp(-kappa*2.0)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("<n> = %v, want %v", got, want)
	}
}

func TestSparseLindbladValidation(t *testing.T) {
	if _, err := NewSparseLindblad(qmath.NewMatrix(2, 3), nil); err == nil {
		t.Error("non-square H accepted")
	}
	if _, err := NewSparseLindblad(qmath.Identity(2), []*qmath.Matrix{qmath.Identity(3)}); err == nil {
		t.Error("mismatched collapse accepted")
	}
	l, _ := NewSparseLindblad(qmath.Identity(2), nil)
	if _, err := l.Evolve(1, 0, qmath.Identity(2)); err == nil {
		t.Error("zero steps accepted")
	}
}
