package noise

import (
	"math"
	"testing"

	"quditkit/internal/density"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

func TestThermalExcitationHeats(t *testing.T) {
	d := 4
	ch := ThermalExcitation(d, 0.4)
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	n, err := r.Expectation(gates.Number(d), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("thermal channel did not heat: <n> = %v", n)
	}
}

func TestLeakageDampsTopLevel(t *testing.T) {
	d := 4
	// Superposition with support on the top level.
	amps := make([]complex128, d)
	amps[0] = complex(1/math.Sqrt2, 0)
	amps[d-1] = complex(1/math.Sqrt2, 0)
	r, err := density.FromPureAmplitudes(hilbert.Dims{d}, amps)
	if err != nil {
		t.Fatal(err)
	}
	ch := Leakage(d, 0.5)
	if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Populations unchanged; coherence with the top level reduced.
	if math.Abs(real(r.At(0, 0))-0.5) > 1e-9 {
		t.Errorf("population changed: %v", real(r.At(0, 0)))
	}
	coh := r.At(0, d-1)
	if math.Hypot(real(coh), imag(coh)) > 0.4 {
		t.Errorf("top-level coherence not damped: %v", coh)
	}
}

func TestIdleChannelsComposition(t *testing.T) {
	m := Model{IdleDamping: 0.1, IdleDephasing: 0.05}
	chs := m.IdleChannels(3)
	if len(chs) != 2 {
		t.Fatalf("idle channels = %d", len(chs))
	}
	for _, ch := range chs {
		if err := ch.CheckCPTP(1e-9); err != nil {
			t.Error(err)
		}
	}
	if (Model{}).IdleChannels(3) != nil {
		t.Error("zero model has idle channels")
	}
}

func TestCheckCPTPFailures(t *testing.T) {
	bad := Channel{Name: "bad", Dim: 2, Kraus: nil}
	if err := bad.CheckCPTP(1e-9); err == nil {
		t.Error("empty Kraus accepted")
	}
	wrongShape := IdentityChannel(3)
	wrongShape.Dim = 2
	if err := wrongShape.CheckCPTP(1e-9); err == nil {
		t.Error("wrong-shape Kraus accepted")
	}
	notComplete := Depolarizing(2, 0.5)
	notComplete.Kraus = notComplete.Kraus[:2]
	if err := notComplete.CheckCPTP(1e-9); err == nil {
		t.Error("incomplete Kraus set accepted")
	}
}

func TestAmplitudeDampingComposition(t *testing.T) {
	// Two successive loss channels with gamma compose to a loss channel
	// with 1-(1-g1)(1-g2): verify via mean photon number on a Fock state.
	d := 6
	g1, g2 := 0.2, 0.3
	r, err := density.NewZero(hilbert.Dims{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.XPow(d, 4), 0); err != nil {
		t.Fatal(err)
	}
	for _, g := range []float64{g1, g2} {
		ch := AmplitudeDamping(d, g)
		if err := r.ApplyKraus(ch.Kraus, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := r.Expectation(gates.Number(d), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * (1 - g1) * (1 - g2)
	if math.Abs(n-want) > 1e-9 {
		t.Errorf("composed loss <n> = %v, want %v", n, want)
	}
}
