package noise

import (
	"fmt"

	"quditkit/internal/qmath"
)

// SparseLindblad is an RK4 master-equation integrator specialized to
// sparse Hamiltonians and jump operators — the fast path for the
// reservoir-computing dynamics, whose coupled-oscillator generators have
// O(dim) nonzeros while dense multiplication would cost O(dim^3).
type SparseLindblad struct {
	dim      int
	h        *qmath.Sparse
	collapse []*qmath.Sparse
	dagger   []*qmath.Sparse
	halfLdL  []*qmath.Sparse
}

// NewSparseLindblad compresses a dense Hamiltonian and collapse operators
// into a sparse integrator. Collapse operators carry rates folded in.
func NewSparseLindblad(h *qmath.Matrix, collapse []*qmath.Matrix) (*SparseLindblad, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("noise: Hamiltonian must be square, got %dx%d", h.Rows, h.Cols)
	}
	l := &SparseLindblad{dim: h.Rows, h: qmath.SparseFromDense(h, 0)}
	for i, c := range collapse {
		if c.Rows != l.dim || c.Cols != l.dim {
			return nil, fmt.Errorf("noise: collapse op %d is %dx%d, want %dx%d", i, c.Rows, c.Cols, l.dim, l.dim)
		}
		sc := qmath.SparseFromDense(c, 0)
		l.collapse = append(l.collapse, sc)
		l.dagger = append(l.dagger, sc.Dagger())
		ldl := c.Dagger().Mul(c).Scale(0.5)
		l.halfLdL = append(l.halfLdL, qmath.SparseFromDense(ldl, 1e-300))
	}
	return l, nil
}

// Dim returns the Hilbert dimension.
func (l *SparseLindblad) Dim() int { return l.dim }

// Derivative returns d rho/dt.
func (l *SparseLindblad) Derivative(rho *qmath.Matrix) *qmath.Matrix {
	// -i (H rho - rho H)
	out := l.h.MulDense(rho)
	out.AddScaledInPlace(-1, l.h.MulDenseLeft(rho))
	out = out.Scale(complex(0, -1))
	for i, c := range l.collapse {
		// L rho L†
		lr := c.MulDense(rho)
		out.AddInPlace(l.dagger[i].MulDenseLeft(lr))
		// -1/2 {L†L, rho}
		out.AddScaledInPlace(-1, l.halfLdL[i].MulDense(rho))
		out.AddScaledInPlace(-1, l.halfLdL[i].MulDenseLeft(rho))
	}
	return out
}

// Step advances rho by one RK4 step of size dt, returning the new state.
func (l *SparseLindblad) Step(dt float64, rho *qmath.Matrix) *qmath.Matrix {
	k1 := l.Derivative(rho)
	r2 := rho.Clone()
	r2.AddScaledInPlace(complex(dt/2, 0), k1)
	k2 := l.Derivative(r2)
	r3 := rho.Clone()
	r3.AddScaledInPlace(complex(dt/2, 0), k2)
	k3 := l.Derivative(r3)
	r4 := rho.Clone()
	r4.AddScaledInPlace(complex(dt, 0), k3)
	k4 := l.Derivative(r4)

	out := rho.Clone()
	out.AddScaledInPlace(complex(dt/6, 0), k1)
	out.AddScaledInPlace(complex(dt/3, 0), k2)
	out.AddScaledInPlace(complex(dt/3, 0), k3)
	out.AddScaledInPlace(complex(dt/6, 0), k4)
	return out
}

// Evolve integrates rho over a duration with the given number of steps,
// returning the final state (rho itself is not modified).
func (l *SparseLindblad) Evolve(duration float64, steps int, rho *qmath.Matrix) (*qmath.Matrix, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("noise: steps must be positive, got %d", steps)
	}
	dt := duration / float64(steps)
	cur := rho.Clone()
	for s := 0; s < steps; s++ {
		cur = l.Step(dt, cur)
	}
	return cur, nil
}
