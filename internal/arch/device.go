// Package arch models the forecast multi-cavity processor as a linearly
// connected chain of cavity-transmon modules and provides the
// "application engineering" layer the paper calls for: Hilbert-space
// capacity accounting, noise-aware placement of logical qudits onto
// physical modes, and swap-network routing of two-qudit gates across the
// chain with duration and fidelity budgets.
package arch

import (
	"errors"
	"fmt"
	"math"

	"quditkit/internal/cavity"
)

// ErrBadDevice indicates an invalid device description.
var ErrBadDevice = errors.New("arch: invalid device")

// Device is a linear chain of cavity modules; modes within a cavity are
// all-to-all coupled through the shared transmon, and adjacent cavities
// are coupled through an inter-cavity coupler.
type Device struct {
	Cavities []cavity.ModuleParams
}

// ForecastDevice returns the machine the paper projects: n linearly
// connected cavities, each a ForecastModule (4 modes, d = 10 photons,
// millisecond T1).
func ForecastDevice(n int) Device {
	cavs := make([]cavity.ModuleParams, n)
	for i := range cavs {
		cavs[i] = cavity.ForecastModule()
	}
	return Device{Cavities: cavs}
}

// ForecastDeviceTrimmed returns a forecast device with each cavity
// trimmed to modesPerCavity modes, keeping the joint Hilbert space of
// the routed register small enough to simulate end to end.
func ForecastDeviceTrimmed(n, modesPerCavity int) Device {
	dev := ForecastDevice(n)
	for i := range dev.Cavities {
		if modesPerCavity > 0 && modesPerCavity < len(dev.Cavities[i].Modes) {
			dev.Cavities[i].Modes = dev.Cavities[i].Modes[:modesPerCavity]
		}
	}
	return dev
}

// Validate checks all modules.
func (d Device) Validate() error {
	if len(d.Cavities) == 0 {
		return fmt.Errorf("%w: no cavities", ErrBadDevice)
	}
	for i, c := range d.Cavities {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("cavity %d: %w", i, err)
		}
	}
	return nil
}

// ModeRef addresses one physical mode.
type ModeRef struct {
	Cavity int
	Mode   int
}

// NumModes returns the total number of physical modes.
func (d Device) NumModes() int {
	n := 0
	for _, c := range d.Cavities {
		n += len(c.Modes)
	}
	return n
}

// ModeAt converts a flat mode index into a ModeRef.
func (d Device) ModeAt(idx int) (ModeRef, error) {
	if idx < 0 {
		return ModeRef{}, fmt.Errorf("%w: mode index %d", ErrBadDevice, idx)
	}
	for c, cav := range d.Cavities {
		if idx < len(cav.Modes) {
			return ModeRef{Cavity: c, Mode: idx}, nil
		}
		idx -= len(cav.Modes)
	}
	return ModeRef{}, fmt.Errorf("%w: mode index out of range", ErrBadDevice)
}

// ModeIndex converts a ModeRef to a flat index.
func (d Device) ModeIndex(ref ModeRef) (int, error) {
	if ref.Cavity < 0 || ref.Cavity >= len(d.Cavities) {
		return 0, fmt.Errorf("%w: cavity %d", ErrBadDevice, ref.Cavity)
	}
	if ref.Mode < 0 || ref.Mode >= len(d.Cavities[ref.Cavity].Modes) {
		return 0, fmt.Errorf("%w: mode %d in cavity %d", ErrBadDevice, ref.Mode, ref.Cavity)
	}
	idx := 0
	for c := 0; c < ref.Cavity; c++ {
		idx += len(d.Cavities[c].Modes)
	}
	return idx + ref.Mode, nil
}

// CavityOf returns the cavity index holding flat mode idx (-1 if out of
// range).
func (d Device) CavityOf(idx int) int {
	ref, err := d.ModeAt(idx)
	if err != nil {
		return -1
	}
	return ref.Cavity
}

// Distance returns the interaction distance between two flat mode
// indices: 0 for co-located modes, otherwise the cavity-chain distance.
func (d Device) Distance(a, b int) int {
	ca, cb := d.CavityOf(a), d.CavityOf(b)
	if ca < 0 || cb < 0 {
		return math.MaxInt32
	}
	diff := ca - cb
	if diff < 0 {
		diff = -diff
	}
	return diff
}

// ModeParams returns the parameters of a flat mode index.
func (d Device) ModeParams(idx int) (cavity.ModeParams, error) {
	ref, err := d.ModeAt(idx)
	if err != nil {
		return cavity.ModeParams{}, err
	}
	return d.Cavities[ref.Cavity].Modes[ref.Mode], nil
}

// CapacityReport is the Hilbert-space accounting of the device (paper §I:
// "such a system would exceed 100 qubits in Hilbert space dimension").
type CapacityReport struct {
	Cavities        int
	TotalModes      int
	LevelsPerMode   int
	Log2Dim         float64
	Log10Dim        float64
	QubitEquivalent int
	// CSUMsPerT1 is the number of co-located cross-Kerr CSUMs that fit in
	// one cavity T1 — the coherence-limited circuit volume per mode pair.
	CSUMsPerT1 float64
}

// Capacity computes the capacity report assuming every mode is operated
// as a qudit with the given number of levels (0 means each mode's own
// configured dimension).
func Capacity(dev Device, levels int) (CapacityReport, error) {
	if err := dev.Validate(); err != nil {
		return CapacityReport{}, err
	}
	rep := CapacityReport{Cavities: len(dev.Cavities)}
	var log2 float64
	for _, cav := range dev.Cavities {
		for _, m := range cav.Modes {
			d := m.Dim
			if levels > 0 {
				d = levels
			}
			rep.LevelsPerMode = d
			log2 += math.Log2(float64(d))
			rep.TotalModes++
		}
	}
	rep.Log2Dim = log2
	rep.Log10Dim = log2 * math.Log10(2)
	rep.QubitEquivalent = int(math.Floor(log2))
	mod := dev.Cavities[0]
	d := mod.Modes[0].Dim
	if levels > 0 {
		d = levels
	}
	dur, err := mod.CSUMDurationSec(d, cavity.RouteCrossKerr)
	if err != nil {
		return CapacityReport{}, err
	}
	rep.CSUMsPerT1 = mod.Modes[0].T1Sec / dur
	return rep, nil
}
