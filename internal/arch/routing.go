package arch

import (
	"fmt"

	"quditkit/internal/cavity"
	"quditkit/internal/circuit"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

// RouteReport summarizes the cost of executing a routed circuit on the
// device.
type RouteReport struct {
	SwapsInserted    int
	TwoQuditGates    int
	OneQuditGates    int
	DepthBefore      int
	DepthAfter       int
	DurationSec      float64
	FidelityEstimate float64
	// FinalLayout[q] is the physical mode hosting logical qudit q AFTER
	// all routing swaps — the layout a measurement of the final state
	// observes (the initial placement is Mapping.LogicalToMode).
	FinalLayout []int
}

// emitFunc receives each physical op during routing; nil means plan-only.
type emitFunc func(g gates.Gate, targets ...int) error

// RouteCircuit lowers a logical circuit onto the device: logical wires are
// placed by the initial mapping, and every two-qudit gate whose operands
// sit more than one cavity apart is preceded by SWAP insertions that walk
// one operand along the cavity chain. The returned circuit acts on one
// wire per physical mode (all at the logical dimension) and is ready for
// simulation; the report carries swap counts and the serial duration /
// coherence-budget fidelity estimate.
//
// All logical wires must share one dimension d, and every device mode
// must support at least d levels. For large devices whose joint Hilbert
// space cannot be represented, use RoutePlan instead.
func RouteCircuit(dev Device, logical *circuit.Circuit, mapping Mapping) (*circuit.Circuit, *RouteReport, error) {
	d, err := routeChecks(dev, logical, mapping)
	if err != nil {
		return nil, nil, err
	}
	phys, err := circuit.New(hilbert.Uniform(dev.NumModes(), d))
	if err != nil {
		return nil, nil, err
	}
	rep, err := routeCore(dev, logical, mapping, d, phys.Append)
	if err != nil {
		return nil, nil, err
	}
	return phys, rep, nil
}

// RoutePlan performs the same routing walk as RouteCircuit but only
// accumulates counts, durations, and the fidelity budget — usable for
// resource estimation on devices far beyond simulable size.
func RoutePlan(dev Device, logical *circuit.Circuit, mapping Mapping) (*RouteReport, error) {
	d, err := routeChecks(dev, logical, mapping)
	if err != nil {
		return nil, err
	}
	return routeCore(dev, logical, mapping, d, func(g gates.Gate, targets ...int) error {
		return nil
	})
}

func routeChecks(dev Device, logical *circuit.Circuit, mapping Mapping) (int, error) {
	if err := dev.Validate(); err != nil {
		return 0, err
	}
	dims := logical.Dims()
	if len(dims) == 0 {
		return 0, fmt.Errorf("%w: empty logical circuit register", ErrBadDevice)
	}
	d := dims[0]
	for w, dw := range dims {
		if dw != d {
			return 0, fmt.Errorf("%w: logical wire %d has dim %d, routing requires uniform dim %d",
				ErrBadDevice, w, dw, d)
		}
	}
	for idx := 0; idx < dev.NumModes(); idx++ {
		p, err := dev.ModeParams(idx)
		if err != nil {
			return 0, err
		}
		if p.Dim < d {
			return 0, fmt.Errorf("%w: mode %d supports %d levels, circuit needs %d",
				ErrBadDevice, idx, p.Dim, d)
		}
	}
	if len(mapping.LogicalToMode) != len(dims) {
		return 0, fmt.Errorf("%w: mapping covers %d qudits, circuit has %d",
			ErrBadDevice, len(mapping.LogicalToMode), len(dims))
	}
	return d, nil
}

func routeCore(dev Device, logical *circuit.Circuit, mapping Mapping, d int, emit emitFunc) (*RouteReport, error) {
	nModes := dev.NumModes()
	layout := append([]int(nil), mapping.LogicalToMode...)
	occupant := make([]int, nModes)
	for i := range occupant {
		occupant[i] = -1
	}
	for q, m := range layout {
		if m < 0 || m >= nModes {
			return nil, fmt.Errorf("%w: logical %d mapped to invalid mode %d", ErrBadDevice, q, m)
		}
		if occupant[m] != -1 {
			return nil, fmt.Errorf("%w: mode %d double-booked", ErrBadDevice, m)
		}
		occupant[m] = q
	}

	module := dev.Cavities[0]
	oneQDur := module.SNAPDurationSec() + 2*module.DisplacementDurationSec()
	twoQDurCo, err := module.CSUMDurationSec(d, cavity.RouteCrossKerr)
	if err != nil {
		return nil, err
	}
	const halfPi = 3.14159265358979 / 2
	twoQDurAdj := twoQDurCo + 2*module.BeamsplitterDurationSec(halfPi)
	swapDur := 2 * module.BeamsplitterDurationSec(halfPi)
	nbar := float64(d-1) / 2
	t1 := module.Modes[0].T1Sec
	t2 := module.Modes[0].T2Sec

	rep := &RouteReport{DepthBefore: logical.Depth(), FidelityEstimate: 1}
	swapGate := gates.SWAP(d)

	// ASAP moment tracking over physical modes for the routed depth.
	lastMoment := make([]int, nModes)
	for i := range lastMoment {
		lastMoment[i] = -1
	}
	placeOp := func(modes ...int) {
		m := 0
		for _, w := range modes {
			if lastMoment[w]+1 > m {
				m = lastMoment[w] + 1
			}
		}
		for _, w := range modes {
			lastMoment[w] = m
		}
		if m+1 > rep.DepthAfter {
			rep.DepthAfter = m + 1
		}
	}

	chargeOp := func(dur float64, modes ...int) {
		rep.DurationSec += dur
		f := cavity.GateFidelityEstimate(dur, nbar, t1, t2)
		for range modes {
			rep.FidelityEstimate *= f
		}
		placeOp(modes...)
	}

	for _, op := range logical.Ops() {
		switch op.Gate.Arity() {
		case 1:
			if err := emit(op.Gate, layout[op.Targets[0]]); err != nil {
				return nil, err
			}
			rep.OneQuditGates++
			chargeOp(oneQDur, layout[op.Targets[0]])
		case 2:
			u, v := op.Targets[0], op.Targets[1]
			for dev.Distance(layout[u], layout[v]) > 1 {
				next, err := stepToward(dev, layout[u], layout[v])
				if err != nil {
					return nil, err
				}
				if err := emit(swapGate, layout[u], next); err != nil {
					return nil, err
				}
				rep.SwapsInserted++
				chargeOp(swapDur, layout[u], next)
				prev := layout[u]
				other := occupant[next]
				occupant[prev] = other
				if other != -1 {
					layout[other] = prev
				}
				occupant[next] = u
				layout[u] = next
			}
			if err := emit(op.Gate, layout[u], layout[v]); err != nil {
				return nil, err
			}
			rep.TwoQuditGates++
			if dev.Distance(layout[u], layout[v]) == 0 {
				chargeOp(twoQDurCo, layout[u], layout[v])
			} else {
				chargeOp(twoQDurAdj, layout[u], layout[v])
			}
		default:
			return nil, fmt.Errorf("arch: routing supports arity <= 2, gate %s has %d",
				op.Gate.Name, op.Gate.Arity())
		}
	}
	rep.FinalLayout = layout
	return rep, nil
}

// stepToward returns the mode in the next cavity along the chain from
// mode a toward mode b, preferring the first mode slot in that cavity.
func stepToward(dev Device, a, b int) (int, error) {
	ca, cb := dev.CavityOf(a), dev.CavityOf(b)
	if ca < 0 || cb < 0 {
		return 0, fmt.Errorf("%w: invalid modes %d, %d", ErrBadDevice, a, b)
	}
	next := ca + 1
	if cb < ca {
		next = ca - 1
	}
	return dev.ModeIndex(ModeRef{Cavity: next, Mode: 0})
}
