package arch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"quditkit/internal/circuit"
)

// InteractionEdge is one weighted logical interaction: Weight counts how
// many two-qudit gates the application applies between logical qudits U
// and V.
type InteractionEdge struct {
	U, V   int
	Weight float64
}

// CircuitEdges extracts the weighted two-qudit interaction graph of a
// logical circuit — the input MapNoiseAware optimizes over. Edges are
// returned sorted by (U, V) so the extraction is deterministic; gates of
// arity other than 2 contribute nothing.
func CircuitEdges(c *circuit.Circuit) []InteractionEdge {
	weights := make(map[[2]int]float64)
	for _, op := range c.Ops() {
		if op.Gate.Arity() != 2 {
			continue
		}
		u, v := op.Targets[0], op.Targets[1]
		if u > v {
			u, v = v, u
		}
		weights[[2]int{u, v}]++
	}
	out := make([]InteractionEdge, 0, len(weights))
	for k, w := range weights {
		out = append(out, InteractionEdge{U: k[0], V: k[1], Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Mapping assigns logical qudits to physical modes.
type Mapping struct {
	// LogicalToMode[q] is the flat mode index hosting logical qudit q.
	LogicalToMode []int
	// Cost is the objective value of the assignment (lower is better).
	Cost float64
}

// MappingOptions tunes the annealed search.
type MappingOptions struct {
	// Iterations of annealing moves; zero selects 2000.
	Iterations int
	// StartTemp is the initial annealing temperature; zero selects 1.0.
	StartTemp float64
}

func (o MappingOptions) withDefaults() MappingOptions {
	if o.Iterations == 0 {
		o.Iterations = 2000
	}
	if o.StartTemp == 0 {
		o.StartTemp = 1.0
	}
	return o
}

// commCost prices a two-qudit gate between two modes: co-located gates
// cost 1, adjacent-cavity gates 2, and farther pairs pay 2 swaps per
// extra hop.
func commCost(dev Device, a, b int) float64 {
	dist := dev.Distance(a, b)
	switch {
	case dist == 0:
		return 1
	case dist == 1:
		return 2
	default:
		return 2 + 2*float64(dist-1)
	}
}

// decohCost prices placing a busy qudit on a short-lived mode, relative
// to the best T1 on the device.
func decohCost(dev Device, mode int, usage float64) float64 {
	p, err := dev.ModeParams(mode)
	if err != nil {
		return math.Inf(1)
	}
	best := 0.0
	for _, c := range dev.Cavities {
		for _, m := range c.Modes {
			if m.T1Sec > best {
				best = m.T1Sec
			}
		}
	}
	return usage * (best/p.T1Sec - 1)
}

// MappingCost evaluates the noise-aware objective of an assignment:
// total swap-weighted communication plus the decoherence penalty of
// hosting heavily used qudits on lossier modes.
func MappingCost(dev Device, edges []InteractionEdge, assign []int) float64 {
	var cost float64
	usage := make([]float64, len(assign))
	for _, e := range edges {
		cost += e.Weight * commCost(dev, assign[e.U], assign[e.V])
		usage[e.U] += e.Weight
		usage[e.V] += e.Weight
	}
	for q, mode := range assign {
		cost += decohCost(dev, mode, usage[q])
	}
	return cost
}

// MapIdentity places logical qudit q on flat mode q.
func MapIdentity(dev Device, numLogical int) (Mapping, error) {
	if numLogical > dev.NumModes() {
		return Mapping{}, fmt.Errorf("%w: %d logical qudits exceed %d modes",
			ErrBadDevice, numLogical, dev.NumModes())
	}
	assign := make([]int, numLogical)
	for i := range assign {
		assign[i] = i
	}
	return Mapping{LogicalToMode: assign, Cost: math.NaN()}, nil
}

// MapNoiseAware searches for a low-cost placement with a greedy
// construction followed by simulated annealing over pairwise relocations.
// The objective is MappingCost: swap-weighted communication plus T1-aware
// decoherence penalties — the qudit noise-aware mapping pass missing from
// qubit-centric toolkits.
func MapNoiseAware(rng *rand.Rand, dev Device, numLogical int, edges []InteractionEdge, opts MappingOptions) (Mapping, error) {
	if err := dev.Validate(); err != nil {
		return Mapping{}, err
	}
	nModes := dev.NumModes()
	if numLogical > nModes {
		return Mapping{}, fmt.Errorf("%w: %d logical qudits exceed %d modes",
			ErrBadDevice, numLogical, nModes)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= numLogical || e.V < 0 || e.V >= numLogical || e.U == e.V {
			return Mapping{}, fmt.Errorf("%w: bad edge (%d,%d)", ErrBadDevice, e.U, e.V)
		}
	}
	opts = opts.withDefaults()

	assign := greedyPlace(dev, numLogical, edges)
	cost := MappingCost(dev, edges, assign)

	best := append([]int(nil), assign...)
	bestCost := cost
	occupied := make(map[int]int, numLogical) // mode -> logical (or -1)
	for q, m := range assign {
		occupied[m] = q
	}

	temp := opts.StartTemp
	cool := math.Pow(1e-3/opts.StartTemp, 1/float64(opts.Iterations))
	for it := 0; it < opts.Iterations; it++ {
		q := rng.Intn(numLogical)
		newMode := rng.Intn(nModes)
		oldMode := assign[q]
		if newMode == oldMode {
			continue
		}
		other, taken := occupied[newMode]
		assign[q] = newMode
		if taken {
			assign[other] = oldMode
		}
		newCost := MappingCost(dev, edges, assign)
		if newCost <= cost || rng.Float64() < math.Exp((cost-newCost)/temp) {
			cost = newCost
			delete(occupied, oldMode)
			occupied[newMode] = q
			if taken {
				occupied[oldMode] = other
			}
			if cost < bestCost {
				bestCost = cost
				copy(best, assign)
			}
		} else {
			// revert
			assign[q] = oldMode
			if taken {
				assign[other] = newMode
			}
		}
		temp *= cool
	}
	return Mapping{LogicalToMode: best, Cost: bestCost}, nil
}

// greedyPlace orders logical qudits by interaction degree and walks the
// device's modes in chain order, so strongly coupled qudits land in the
// same or adjacent cavities.
func greedyPlace(dev Device, numLogical int, edges []InteractionEdge) []int {
	degree := make([]float64, numLogical)
	for _, e := range edges {
		degree[e.U] += e.Weight
		degree[e.V] += e.Weight
	}
	order := make([]int, numLogical)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending degree (numLogical is small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && degree[order[j]] > degree[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	assign := make([]int, numLogical)
	for slot, q := range order {
		assign[q] = slot
	}
	return assign
}
