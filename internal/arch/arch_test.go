package arch

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/circuit"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

func TestForecastDeviceCapacity(t *testing.T) {
	dev := ForecastDevice(10)
	if err := dev.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Capacity(dev, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalModes != 40 {
		t.Errorf("modes = %d, want 40", rep.TotalModes)
	}
	// 40 modes x log2(10) = ~132.9 qubit equivalents: "exceeds 100 qubits
	// in Hilbert space dimension" (paper §I).
	if rep.QubitEquivalent <= 100 {
		t.Errorf("qubit equivalent = %d, want > 100", rep.QubitEquivalent)
	}
	if math.Abs(rep.Log10Dim-40) > 0.5 {
		t.Errorf("log10 dim = %v, want ~40", rep.Log10Dim)
	}
	if rep.CSUMsPerT1 < 1 {
		t.Errorf("CSUMs per T1 = %v, expected at least a few", rep.CSUMsPerT1)
	}
}

func TestModeIndexRoundTrip(t *testing.T) {
	dev := ForecastDevice(3)
	for idx := 0; idx < dev.NumModes(); idx++ {
		ref, err := dev.ModeAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dev.ModeIndex(ref)
		if err != nil {
			t.Fatal(err)
		}
		if back != idx {
			t.Errorf("round trip %d -> %+v -> %d", idx, ref, back)
		}
	}
	if _, err := dev.ModeAt(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := dev.ModeAt(dev.NumModes()); err == nil {
		t.Error("overflow index accepted")
	}
	if _, err := dev.ModeIndex(ModeRef{Cavity: 9, Mode: 0}); err == nil {
		t.Error("bad cavity accepted")
	}
}

func TestDistance(t *testing.T) {
	dev := ForecastDevice(3)
	// Modes 0 and 1 are in cavity 0.
	if d := dev.Distance(0, 1); d != 0 {
		t.Errorf("co-located distance = %d", d)
	}
	// Modes 0 (cavity 0) and 4 (cavity 1).
	if d := dev.Distance(0, 4); d != 1 {
		t.Errorf("adjacent distance = %d", d)
	}
	// Modes 0 and 8 (cavity 2).
	if d := dev.Distance(0, 8); d != 2 {
		t.Errorf("two-hop distance = %d", d)
	}
}

func TestMappingCostPrefersColocation(t *testing.T) {
	dev := ForecastDevice(4)
	edges := []InteractionEdge{{U: 0, V: 1, Weight: 10}}
	// Co-located assignment.
	co := []int{0, 1}
	// Far assignment: cavity 0 and cavity 3.
	far := []int{0, 12}
	if MappingCost(dev, edges, co) >= MappingCost(dev, edges, far) {
		t.Error("co-located assignment not cheaper")
	}
}

func TestMapNoiseAwareImprovesOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dev := ForecastDevice(5)
	// Ring of 8 logical qudits.
	var edges []InteractionEdge
	n := 8
	for i := 0; i < n; i++ {
		edges = append(edges, InteractionEdge{U: i, V: (i + 1) % n, Weight: 1})
	}
	m, err := MapNoiseAware(rng, dev, n, edges, MappingOptions{Iterations: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad assignment: spread across the chain ends.
	bad := []int{0, 16, 1, 17, 2, 18, 3, 19}
	if m.Cost >= MappingCost(dev, edges, bad) {
		t.Errorf("annealed cost %v not better than scattered %v", m.Cost, MappingCost(dev, edges, bad))
	}
	// No duplicate modes.
	seen := map[int]bool{}
	for _, mode := range m.LogicalToMode {
		if seen[mode] {
			t.Fatal("mapping double-booked a mode")
		}
		seen[mode] = true
	}
}

func TestMapNoiseAwareValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dev := ForecastDevice(1)
	if _, err := MapNoiseAware(rng, dev, 10, nil, MappingOptions{}); err == nil {
		t.Error("too many logical qudits accepted")
	}
	if _, err := MapNoiseAware(rng, dev, 2, []InteractionEdge{{U: 0, V: 5}}, MappingOptions{}); err == nil {
		t.Error("bad edge accepted")
	}
	if _, err := MapIdentity(dev, 100); err == nil {
		t.Error("identity mapping overflow accepted")
	}
}

func TestRouteCircuitColocated(t *testing.T) {
	dev := ForecastDevice(2)
	d := 3
	logical, err := circuit.New(hilbert.Uniform(2, d))
	if err != nil {
		t.Fatal(err)
	}
	logical.MustAppend(gates.DFT(d), 0)
	logical.MustAppend(gates.CSUM(d, d), 0, 1)
	mapping, err := MapIdentity(dev, 2)
	if err != nil {
		t.Fatal(err)
	}
	phys, rep, err := RouteCircuit(dev, logical, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapsInserted != 0 {
		t.Errorf("co-located gates needed %d swaps", rep.SwapsInserted)
	}
	if rep.TwoQuditGates != 1 || rep.OneQuditGates != 1 {
		t.Errorf("gate counts: %+v", rep)
	}
	if phys.NumWires() != dev.NumModes() {
		t.Errorf("physical wires = %d, want %d", phys.NumWires(), dev.NumModes())
	}
	if rep.FidelityEstimate <= 0 || rep.FidelityEstimate > 1 {
		t.Errorf("fidelity estimate %v", rep.FidelityEstimate)
	}
}

// smallDevice returns a chain of nCav cavities with two modes each, so
// simulation registers stay small in tests.
func smallDevice(nCav int) Device {
	dev := ForecastDevice(nCav)
	for i := range dev.Cavities {
		dev.Cavities[i].Modes = dev.Cavities[i].Modes[:2]
	}
	return dev
}

func TestRouteCircuitInsertsSwaps(t *testing.T) {
	dev := smallDevice(4) // 8 modes
	d := 3
	logical, err := circuit.New(hilbert.Uniform(2, d))
	if err != nil {
		t.Fatal(err)
	}
	logical.MustAppend(gates.CSUM(d, d), 0, 1)
	// Place the qudits three cavities apart: modes 0 and 6 (cavity 3).
	mapping := Mapping{LogicalToMode: []int{0, 6}}
	phys, rep, err := RouteCircuit(dev, logical, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapsInserted < 2 {
		t.Errorf("expected >= 2 swaps over 3 hops, got %d", rep.SwapsInserted)
	}
	// Routed circuit must preserve semantics: |a, b> on the two logical
	// qudits still CSUMs. Run physical circuit from a prepared state.
	prep, err := circuit.New(hilbert.Uniform(dev.NumModes(), d))
	if err != nil {
		t.Fatal(err)
	}
	// logical 0 at mode 0 = |1>, logical 1 at mode 6 = |2>.
	prep.MustAppend(gates.XPow(d, 1), 0)
	prep.MustAppend(gates.XPow(d, 2), 6)
	if err := prep.Compose(phys); err != nil {
		t.Fatal(err)
	}
	v, err := prep.Run()
	if err != nil {
		t.Fatal(err)
	}
	// After routing, logical 1 should hold (1+2) mod 3 = 0 wherever it
	// ended up. Find it: total probability must sit on a single basis
	// state; decode digits.
	idx := v.MostProbable()
	digits := v.Space().Digits(idx)
	// Count nonzero digits: logical 0 carries |1>, logical 1 carries |0>.
	nonzero := 0
	for _, g := range digits {
		if g != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("routed CSUM wrong: digits %v", digits)
	}
	found1 := false
	for _, g := range digits {
		if g == 1 {
			found1 = true
		}
	}
	if !found1 {
		t.Errorf("control qudit value lost: digits %v", digits)
	}
}

func TestRouteCircuitRejectsMixedDims(t *testing.T) {
	dev := ForecastDevice(2)
	logical, err := circuit.New(hilbert.Dims{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	mapping := Mapping{LogicalToMode: []int{0, 1}}
	if _, _, err := RouteCircuit(dev, logical, mapping); err == nil {
		t.Error("mixed-dimension circuit accepted")
	}
}

func TestRouteCircuitRejectsOverDimension(t *testing.T) {
	dev := ForecastDevice(2)
	logical, err := circuit.New(hilbert.Uniform(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	mapping := Mapping{LogicalToMode: []int{0, 1}}
	if _, _, err := RouteCircuit(dev, logical, mapping); err == nil {
		t.Error("16-level circuit accepted on 10-level modes")
	}
}

func TestRouteCircuitDoubleBookedMapping(t *testing.T) {
	dev := ForecastDevice(2)
	logical, err := circuit.New(hilbert.Uniform(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	mapping := Mapping{LogicalToMode: []int{0, 0}}
	if _, _, err := RouteCircuit(dev, logical, mapping); err == nil {
		t.Error("double-booked mapping accepted")
	}
}
