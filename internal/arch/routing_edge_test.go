package arch

import (
	"math/rand"
	"testing"

	"quditkit/internal/circuit"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

// TestSingleCavityNoInterCavitySwaps: on a one-cavity device every mode
// pair is co-located, so routing must never insert a swap no matter how
// the circuit entangles its wires.
func TestSingleCavityNoInterCavitySwaps(t *testing.T) {
	dev := ForecastDeviceTrimmed(1, 3)
	c, err := circuit.New(hilbert.Dims{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all entanglement, both orientations.
	c.MustAppend(gates.CSUM(3, 3), 0, 1)
	c.MustAppend(gates.CSUM(3, 3), 1, 2)
	c.MustAppend(gates.CSUM(3, 3), 2, 0)
	c.MustAppend(gates.CSUM(3, 3), 0, 2)

	rng := rand.New(rand.NewSource(5))
	mapping, err := MapNoiseAware(rng, dev, 3, CircuitEdges(c), MappingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	phys, rep, err := RouteCircuit(dev, c, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapsInserted != 0 {
		t.Errorf("single-cavity routing inserted %d swaps", rep.SwapsInserted)
	}
	for i, op := range phys.Ops() {
		if op.Gate.Name == gates.SWAP(3).Name {
			t.Errorf("op %d is a SWAP on a single-cavity device", i)
		}
	}
	if rep.TwoQuditGates != 4 {
		t.Errorf("two-qudit count %d, want 4", rep.TwoQuditGates)
	}
}

// TestCircuitWiderThanDevice: more logical wires than physical modes
// must produce an error from every entry point, never a panic.
func TestCircuitWiderThanDevice(t *testing.T) {
	dev := ForecastDeviceTrimmed(1, 2) // 2 modes
	c, err := circuit.New(hilbert.Dims{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	c.MustAppend(gates.CSUM(3, 3), 0, 1)

	rng := rand.New(rand.NewSource(1))
	if _, err := MapNoiseAware(rng, dev, 3, CircuitEdges(c), MappingOptions{}); err == nil {
		t.Error("MapNoiseAware accepted 3 logical qudits on 2 modes")
	}
	if _, err := MapIdentity(dev, 3); err == nil {
		t.Error("MapIdentity accepted 3 logical qudits on 2 modes")
	}
	// A mapping of the wrong width must be rejected by routing checks.
	mapping := Mapping{LogicalToMode: []int{0, 1}}
	if _, _, err := RouteCircuit(dev, c, mapping); err == nil {
		t.Error("RouteCircuit accepted a mapping narrower than the circuit")
	}
	// And one that indexes outside the device must error, not panic.
	bad := Mapping{LogicalToMode: []int{0, 1, 7}}
	if _, _, err := RouteCircuit(dev, c, bad); err == nil {
		t.Error("RouteCircuit accepted an out-of-range mode index")
	}
}

// TestCircuitEdgesDeterministic: edge extraction is sorted, so repeated
// calls agree element-wise (the property placement determinism builds
// on).
func TestCircuitEdgesDeterministic(t *testing.T) {
	c, err := circuit.New(hilbert.Dims{3, 3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	c.MustAppend(gates.CSUM(3, 3), 2, 3)
	c.MustAppend(gates.CSUM(3, 3), 0, 1)
	c.MustAppend(gates.CSUM(3, 3), 3, 2) // same pair, reversed orientation
	c.MustAppend(gates.CSUM(3, 3), 1, 2)
	c.MustAppend(gates.DFT(3), 0) // arity 1: ignored

	a := CircuitEdges(c)
	b := CircuitEdges(c)
	if len(a) != 3 {
		t.Fatalf("edge count %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs between calls: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && (a[i].U < a[i-1].U || (a[i].U == a[i-1].U && a[i].V <= a[i-1].V)) {
			t.Fatalf("edges not sorted: %+v", a)
		}
	}
	// The (2,3) pair was hit twice, once per orientation.
	for _, e := range a {
		if e.U == 2 && e.V == 3 && e.Weight != 2 {
			t.Errorf("edge (2,3) weight %g, want 2", e.Weight)
		}
	}
}
