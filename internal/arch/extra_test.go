package arch

import (
	"math/rand"
	"testing"

	"quditkit/internal/circuit"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

func TestCapacityPerModeDims(t *testing.T) {
	dev := ForecastDevice(2)
	// levels = 0 uses each mode's configured dimension (10).
	rep, err := Capacity(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LevelsPerMode != 10 {
		t.Errorf("levels = %d", rep.LevelsPerMode)
	}
	if rep.TotalModes != 8 {
		t.Errorf("modes = %d", rep.TotalModes)
	}
}

func TestMapNoiseAwareNoEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dev := ForecastDevice(2)
	m, err := MapNoiseAware(rng, dev, 3, nil, MappingOptions{Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.LogicalToMode) != 3 {
		t.Fatalf("mapping size = %d", len(m.LogicalToMode))
	}
}

func TestRouteOneQuditOnlyCircuit(t *testing.T) {
	dev := smallDevice(2)
	logical, err := circuit.New(hilbert.Uniform(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	logical.MustAppend(gates.DFT(3), 0)
	logical.MustAppend(gates.X(3), 1)
	logical.MustAppend(gates.Z(3), 2)
	mapping, err := MapIdentity(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := RouteCircuit(dev, logical, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapsInserted != 0 || rep.TwoQuditGates != 0 || rep.OneQuditGates != 3 {
		t.Errorf("report = %+v", rep)
	}
	// Three 1-qudit gates on distinct wires share one moment.
	if rep.DepthAfter != 1 {
		t.Errorf("depth = %d, want 1", rep.DepthAfter)
	}
}

func TestRoutePlanMatchesRouteCircuitCounts(t *testing.T) {
	dev := smallDevice(3)
	d := 3
	logical, err := circuit.New(hilbert.Uniform(3, d))
	if err != nil {
		t.Fatal(err)
	}
	logical.MustAppend(gates.CSUM(d, d), 0, 2)
	logical.MustAppend(gates.DFT(d), 1)
	logical.MustAppend(gates.CSUM(d, d), 1, 2)
	mapping := Mapping{LogicalToMode: []int{0, 2, 4}}
	_, repC, err := RouteCircuit(dev, logical, mapping)
	if err != nil {
		t.Fatal(err)
	}
	repP, err := RoutePlan(dev, logical, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if repC.SwapsInserted != repP.SwapsInserted ||
		repC.TwoQuditGates != repP.TwoQuditGates ||
		repC.OneQuditGates != repP.OneQuditGates ||
		repC.DurationSec != repP.DurationSec ||
		repC.DepthAfter != repP.DepthAfter {
		t.Errorf("plan and circuit reports diverge:\n%+v\n%+v", repC, repP)
	}
}

func TestRouteRejectsThreeWireGates(t *testing.T) {
	dev := smallDevice(2)
	logical, err := circuit.New(hilbert.Uniform(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	three, err := gates.FromMatrix("big", []int{2, 2, 2},
		gates.ControlledU(2, 1, gates.CSUM(2, 2).Matrix).Matrix)
	if err != nil {
		t.Fatal(err)
	}
	logical.MustAppend(three, 0, 1, 2)
	mapping, err := MapIdentity(dev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RouteCircuit(dev, logical, mapping); err == nil {
		t.Error("3-wire gate accepted by router")
	}
}

func TestDeviceValidate(t *testing.T) {
	var dev Device
	if err := dev.Validate(); err == nil {
		t.Error("empty device accepted")
	}
	dev = ForecastDevice(1)
	dev.Cavities[0].Modes[0].T1Sec = 0
	if err := dev.Validate(); err == nil {
		t.Error("zero T1 accepted")
	}
}
