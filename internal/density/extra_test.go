package density

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

func TestNewZeroRejectsHugeRegister(t *testing.T) {
	if _, err := NewZero(hilbert.Uniform(16, 3)); err == nil {
		t.Error("oversized density register accepted")
	}
}

func TestApplyKrausShapeError(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{3})
	if err := r.ApplyKraus([]*qmath.Matrix{qmath.Identity(2)}, []int{0}); err == nil {
		t.Error("wrong-dim Kraus accepted")
	}
}

func TestApplyUnitaryShapeError(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{3})
	if err := r.ApplyUnitary(qmath.Identity(2), []int{0}); err == nil {
		t.Error("wrong-dim unitary accepted")
	}
}

func TestPartialTraceOrdering(t *testing.T) {
	// |psi> = |1>_A |2>_B on dims {2, 3}; keep=[1, 0] returns the factors
	// in swapped order.
	sp := hilbert.MustSpace(hilbert.Dims{2, 3})
	amps := qmath.NewVector(6)
	amps[sp.Index([]int{1, 2})] = 1
	r, err := FromPureAmplitudes(hilbert.Dims{2, 3}, amps)
	if err != nil {
		t.Fatal(err)
	}
	red, err := r.PartialTrace([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !red.Dims().Equal(hilbert.Dims{3, 2}) {
		t.Fatalf("reduced dims = %v", red.Dims())
	}
	// Population sits at digits (2, 1) of the swapped register.
	idx := red.Space().Index([]int{2, 1})
	if math.Abs(real(red.At(idx, idx))-1) > 1e-10 {
		t.Error("swapped partial trace misplaced the population")
	}
}

func TestPartialTraceBadKeep(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{2, 2})
	if _, err := r.PartialTrace([]int{0, 0}); err == nil {
		t.Error("duplicate keep accepted")
	}
	if _, err := r.PartialTrace([]int{5}); err == nil {
		t.Error("out-of-range keep accepted")
	}
}

func TestVonNeumannEntropyPure(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{4})
	s, err := r.VonNeumannEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 1e-8 {
		t.Errorf("pure-state entropy = %v", s)
	}
}

func TestVonNeumannEntropyMaximallyMixed(t *testing.T) {
	d := 4
	r, err := FromMatrix(hilbert.Dims{4}, qmath.Identity(d).Scale(complex(1.0/float64(d), 0)))
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.VonNeumannEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-8 { // log2(4) bits
		t.Errorf("maximally mixed entropy = %v, want 2", s)
	}
	if math.Abs(r.Purity()-0.25) > 1e-10 {
		t.Errorf("purity = %v, want 0.25", r.Purity())
	}
}

func TestFidelityPureShapeError(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{2})
	if _, err := r.FidelityPure(qmath.Vector{1, 0, 0}); err == nil {
		t.Error("wrong-dim reference accepted")
	}
}

func TestMixedDimensionChannelApplication(t *testing.T) {
	// Kraus on the qutrit of a {2, 3} register leaves the qubit marginal
	// untouched.
	rng := rand.New(rand.NewSource(7))
	m := qmath.RandomDensityMatrix(rng, 6)
	r, err := FromMatrix(hilbert.Dims{2, 3}, m)
	if err != nil {
		t.Fatal(err)
	}
	before := r.WireProbabilities(0)
	// A full dephasing channel on the qutrit.
	z := gates.Z(3).Matrix
	ks := []*qmath.Matrix{
		qmath.Identity(3).Scale(complex(math.Sqrt(1.0/3), 0)),
		z.Scale(complex(math.Sqrt(1.0/3), 0)),
		z.Mul(z).Scale(complex(math.Sqrt(1.0/3), 0)),
	}
	if err := r.ApplyKraus(ks, []int{1}); err != nil {
		t.Fatal(err)
	}
	after := r.WireProbabilities(0)
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Errorf("qubit marginal changed: %v -> %v", before[i], after[i])
		}
	}
	// Qutrit coherences are gone.
	red, err := r.PartialTrace([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && cmplx.Abs(red.At(i, j)) > 1e-9 {
				t.Errorf("coherence (%d,%d) survived", i, j)
			}
		}
	}
}
