// Package density implements a density-matrix simulator for mixed-radix
// qudit registers, supporting unitary conjugation, Kraus channels on
// subsystems, partial trace, and the mixed-state functionals (purity,
// entropy, fidelity) used in the noisy-application studies.
package density

import (
	"fmt"
	"math"
	"math/rand"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

// DM is a density matrix over a mixed-radix register.
type DM struct {
	space *hilbert.Space
	mat   *qmath.Matrix
}

// maxDMDim bounds the density matrices this simulator will allocate
// (8192^2 complex128 = 1 GiB).
const maxDMDim = 1 << 13

// NewZero returns the pure density matrix |0...0><0...0|.
func NewZero(dims hilbert.Dims) (*DM, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if sp.Total() > maxDMDim {
		return nil, fmt.Errorf("density: dimension %d exceeds simulable limit %d", sp.Total(), maxDMDim)
	}
	m := qmath.NewMatrix(sp.Total(), sp.Total())
	m.Set(0, 0, 1)
	return &DM{space: sp, mat: m}, nil
}

// FromPureAmplitudes builds |psi><psi| from an amplitude vector.
func FromPureAmplitudes(dims hilbert.Dims, amps qmath.Vector) (*DM, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if len(amps) != sp.Total() {
		return nil, fmt.Errorf("density: %d amplitudes for dimension %d", len(amps), sp.Total())
	}
	v := amps.Clone()
	if v.Normalize() == 0 {
		return nil, fmt.Errorf("density: zero amplitude vector")
	}
	return &DM{space: sp, mat: v.Outer(v)}, nil
}

// FromMatrix wraps a copy of an existing density matrix after validating
// shape, Hermiticity and unit trace.
func FromMatrix(dims hilbert.Dims, m *qmath.Matrix) (*DM, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if m.Rows != sp.Total() || m.Cols != sp.Total() {
		return nil, fmt.Errorf("density: matrix %dx%d for dimension %d", m.Rows, m.Cols, sp.Total())
	}
	if !m.IsHermitian(1e-8) {
		return nil, fmt.Errorf("density: matrix is not Hermitian")
	}
	tr := real(m.Trace())
	if math.Abs(tr-1) > 1e-6 {
		return nil, fmt.Errorf("density: trace %v != 1", tr)
	}
	return &DM{space: sp, mat: m.Clone()}, nil
}

// Clone returns a deep copy.
func (r *DM) Clone() *DM {
	return &DM{space: r.space, mat: r.mat.Clone()}
}

// Space returns the register index space.
func (r *DM) Space() *hilbert.Space { return r.space }

// Dims returns the register dimensions.
func (r *DM) Dims() hilbert.Dims { return r.space.Dims() }

// Dim returns the Hilbert dimension.
func (r *DM) Dim() int { return r.space.Total() }

// Matrix returns a copy of the underlying matrix.
func (r *DM) Matrix() *qmath.Matrix { return r.mat.Clone() }

// At returns the (i, j) element.
func (r *DM) At(i, j int) complex128 { return r.mat.At(i, j) }

// Trace returns Tr(rho), 1 for a normalized state.
func (r *DM) Trace() float64 { return real(r.mat.Trace()) }

// Normalize rescales rho to unit trace (no-op on zero trace).
func (r *DM) Normalize() {
	tr := real(r.mat.Trace())
	if tr == 0 {
		return
	}
	inv := complex(1/tr, 0)
	for i := range r.mat.Data {
		r.mat.Data[i] *= inv
	}
}

// leftApply sets rho <- (op on targets) rho, i.e. multiplies each column's
// target-subspace block by op.
func (r *DM) leftApply(op *qmath.Matrix, targets []int) {
	dim := r.space.TargetDim(targets)
	offsets := r.space.TargetOffsets(targets)
	n := r.space.Total()
	scratch := make([]complex128, dim)
	out := make([]complex128, dim)
	r.space.SubspaceIter(targets, func(base int) {
		for c := 0; c < n; c++ {
			for k, off := range offsets {
				scratch[k] = r.mat.At(base+off, c)
			}
			for i := 0; i < dim; i++ {
				row := op.Row(i)
				var s complex128
				for k, x := range row {
					if x != 0 {
						s += x * scratch[k]
					}
				}
				out[i] = s
			}
			for k, off := range offsets {
				r.mat.Set(base+off, c, out[k])
			}
		}
	})
}

// rightApplyDagger sets rho <- rho (op on targets)†.
func (r *DM) rightApplyDagger(op *qmath.Matrix, targets []int) {
	dim := r.space.TargetDim(targets)
	offsets := r.space.TargetOffsets(targets)
	n := r.space.Total()
	scratch := make([]complex128, dim)
	out := make([]complex128, dim)
	r.space.SubspaceIter(targets, func(base int) {
		for row := 0; row < n; row++ {
			for k, off := range offsets {
				scratch[k] = r.mat.At(row, base+off)
			}
			// (rho op†)[r][c'] = sum_c rho[r][c] conj(op[c'][c]).
			for i := 0; i < dim; i++ {
				opRow := op.Row(i)
				var s complex128
				for k, x := range opRow {
					if x != 0 {
						s += scratch[k] * complex(real(x), -imag(x))
					}
				}
				out[i] = s
			}
			for k, off := range offsets {
				r.mat.Set(row, base+off, out[k])
			}
		}
	})
}

// Apply conjugates rho by the gate unitary on the target wires.
func (r *DM) Apply(g gates.Gate, targets ...int) error {
	if len(targets) != g.Arity() {
		return fmt.Errorf("density: gate %s arity %d got %d targets", g.Name, g.Arity(), len(targets))
	}
	for i, t := range targets {
		if t < 0 || t >= r.space.NumWires() {
			return fmt.Errorf("density: target %d out of range", t)
		}
		if r.space.Dim(t) != g.Dims[i] {
			return fmt.Errorf("density: gate %s expects dim %d on slot %d, wire %d has dim %d",
				g.Name, g.Dims[i], i, t, r.space.Dim(t))
		}
	}
	if err := r.space.CheckTargets(targets); err != nil {
		return err
	}
	return r.ApplyUnitary(g.Matrix, targets)
}

// ApplyUnitary conjugates rho by u on the target wires: rho <- U rho U†.
func (r *DM) ApplyUnitary(u *qmath.Matrix, targets []int) error {
	dim := r.space.TargetDim(targets)
	if u.Rows != dim || u.Cols != dim {
		return fmt.Errorf("density: unitary %dx%d does not match target dim %d", u.Rows, u.Cols, dim)
	}
	r.leftApply(u, targets)
	r.rightApplyDagger(u, targets)
	return nil
}

// ApplyKraus applies the channel rho <- sum_k K_k rho K_k† on the target
// wires. The Kraus operators must be dim x dim on the joint target space;
// completeness (sum K†K = I) is the caller's responsibility and can be
// checked with noise.CheckCPTP.
func (r *DM) ApplyKraus(ks []*qmath.Matrix, targets []int) error {
	dim := r.space.TargetDim(targets)
	for i, k := range ks {
		if k.Rows != dim || k.Cols != dim {
			return fmt.Errorf("density: Kraus op %d is %dx%d, want %dx%d", i, k.Rows, k.Cols, dim, dim)
		}
	}
	n := r.space.Total()
	acc := qmath.NewMatrix(n, n)
	for _, k := range ks {
		term := r.Clone()
		term.leftApply(k, targets)
		term.rightApplyDagger(k, targets)
		acc.AddInPlace(term.mat)
	}
	r.mat = acc
	return nil
}

// PartialTrace returns the reduced density matrix over the kept wires (in
// the order given), tracing out all others.
func (r *DM) PartialTrace(keep []int) (*DM, error) {
	if err := r.space.CheckTargets(keep); err != nil {
		return nil, err
	}
	keepDims := make(hilbert.Dims, len(keep))
	for i, w := range keep {
		keepDims[i] = r.space.Dim(w)
	}
	outSpace, err := hilbert.NewSpace(keepDims)
	if err != nil {
		return nil, err
	}
	dim := outSpace.Total()
	offsets := r.space.TargetOffsets(keep)
	out := qmath.NewMatrix(dim, dim)
	r.space.SubspaceIter(keep, func(base int) {
		for i := 0; i < dim; i++ {
			ri := base + offsets[i]
			for j := 0; j < dim; j++ {
				out.Data[i*dim+j] += r.mat.At(ri, base+offsets[j])
			}
		}
	})
	return &DM{space: outSpace, mat: out}, nil
}

// Expectation returns Tr(rho M) for an operator on the target wires.
func (r *DM) Expectation(m *qmath.Matrix, targets []int) (float64, error) {
	dim := r.space.TargetDim(targets)
	if m.Rows != dim || m.Cols != dim {
		return 0, fmt.Errorf("density: operator %dx%d does not match target dim %d", m.Rows, m.Cols, dim)
	}
	// Tr(rho M) computed directly over target cosets:
	// sum_base sum_{i,j} rho[base+off_j][base+off_i] M[i][j]... careful:
	// Tr(rho M) = sum_{a,b} rho[a][b] M[b][a] with M acting as identity on
	// non-target wires, so a and b share their non-target digits.
	var tr complex128
	offsets := r.space.TargetOffsets(targets)
	r.space.SubspaceIter(targets, func(base int) {
		for i := 0; i < dim; i++ {
			row := m.Row(i)
			for j, x := range row {
				if x != 0 {
					tr += r.mat.At(base+offsets[j], base+offsets[i]) * x
				}
			}
		}
	})
	return real(tr), nil
}

// Purity returns Tr(rho^2), computable as the squared Frobenius norm for
// Hermitian rho.
func (r *DM) Purity() float64 {
	f := r.mat.FrobeniusNorm()
	return f * f
}

// VonNeumannEntropy returns -Tr(rho log2 rho) in bits.
func (r *DM) VonNeumannEntropy() (float64, error) {
	eig, err := qmath.EigHermitian(r.mat)
	if err != nil {
		return 0, fmt.Errorf("entropy: %w", err)
	}
	var s float64
	for _, p := range eig.Values {
		if p > 1e-15 {
			s -= p * math.Log2(p)
		}
	}
	return s, nil
}

// FidelityPure returns <psi|rho|psi> for a pure reference state given by
// its amplitudes.
func (r *DM) FidelityPure(psi qmath.Vector) (float64, error) {
	if len(psi) != r.space.Total() {
		return 0, fmt.Errorf("density: reference dimension %d != %d", len(psi), r.space.Total())
	}
	w := r.mat.MulVec(psi)
	return real(psi.Dot(w)), nil
}

// Probabilities returns the diagonal of rho: the Born probabilities of
// every basis state.
func (r *DM) Probabilities() []float64 {
	n := r.space.Total()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = real(r.mat.At(i, i))
	}
	return out
}

// WireProbabilities returns the marginal distribution of a single wire.
func (r *DM) WireProbabilities(wire int) []float64 {
	d := r.space.Dim(wire)
	out := make([]float64, d)
	stride := r.space.Stride(wire)
	r.space.SubspaceIter([]int{wire}, func(base int) {
		for g := 0; g < d; g++ {
			idx := base + g*stride
			out[g] += real(r.mat.At(idx, idx))
		}
	})
	return out
}

// Sample draws n basis-state indices from the diagonal distribution
// through the shared binary-search sampler (which clamps the negative
// numerical dust a Kraus cascade can leave on the diagonal).
func (r *DM) Sample(rng *rand.Rand, n int) []int {
	var sampler qmath.CDFSampler
	sampler.Load(r.Probabilities())
	out := make([]int, n)
	for s := 0; s < n; s++ {
		out[s] = sampler.Draw(rng)
	}
	return out
}

// MostProbable returns the basis index with the largest population.
func (r *DM) MostProbable() int {
	best, bestP := 0, math.Inf(-1)
	for i := 0; i < r.space.Total(); i++ {
		if p := real(r.mat.At(i, i)); p > bestP {
			bestP = p
			best = i
		}
	}
	return best
}
