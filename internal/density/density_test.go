package density

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

const tol = 1e-9

func randomDM(t *testing.T, rng *rand.Rand, dims hilbert.Dims) *DM {
	t.Helper()
	sp := hilbert.MustSpace(dims)
	m := qmath.RandomDensityMatrix(rng, sp.Total())
	r, err := FromMatrix(dims, m)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewZero(t *testing.T) {
	r, err := NewZero(hilbert.Dims{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Trace()-1) > tol {
		t.Errorf("trace = %v", r.Trace())
	}
	if math.Abs(r.Purity()-1) > tol {
		t.Errorf("purity = %v", r.Purity())
	}
}

func TestFromMatrixValidation(t *testing.T) {
	bad := qmath.Identity(4) // trace 4
	if _, err := FromMatrix(hilbert.Dims{2, 2}, bad); err == nil {
		t.Error("trace != 1 accepted")
	}
	nonHerm := qmath.NewMatrix(2, 2)
	nonHerm.Set(0, 1, 1)
	nonHerm.Set(0, 0, 1)
	if _, err := FromMatrix(hilbert.Dims{2}, nonHerm); err == nil {
		t.Error("non-Hermitian accepted")
	}
	if _, err := FromMatrix(hilbert.Dims{3}, qmath.Identity(2)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestApplyUnitaryMatchesPureEvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dims := hilbert.Dims{2, 3}
	psi := qmath.RandomState(rng, 6)
	r, err := FromPureAmplitudes(dims, psi)
	if err != nil {
		t.Fatal(err)
	}
	g := gates.CSUM(2, 3)
	if err := r.Apply(g, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Oracle: evolve the pure state with the full matrix and form the
	// projector.
	sp := hilbert.MustSpace(dims)
	full := qmath.NewMatrix(6, 6)
	offsets := sp.TargetOffsets([]int{0, 1})
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			full.Set(offsets[i], offsets[j], g.Matrix.At(i, j))
		}
	}
	want := full.MulVec(psi)
	fid, err := r.FidelityPure(want)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fid-1) > tol {
		t.Errorf("fidelity after unitary = %v, want 1", fid)
	}
}

func TestApplyUnitaryPreservesTraceAndHermiticity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dims := hilbert.Dims{3, 2, 2}
	r := randomDM(t, rng, dims)
	seq := []struct {
		g       gates.Gate
		targets []int
	}{
		{gates.DFT(3), []int{0}},
		{gates.CSUM(2, 2), []int{1, 2}},
		{gates.RotorMixer(3, 0.7), []int{0}},
		{gates.CSUM(3, 2), []int{0, 2}},
	}
	for _, s := range seq {
		if err := r.Apply(s.g, s.targets...); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(r.Trace()-1) > 1e-8 {
		t.Errorf("trace drifted to %v", r.Trace())
	}
	if !r.Matrix().IsHermitian(1e-8) {
		t.Error("Hermiticity lost")
	}
}

func TestApplyKrausDepolarizingQubit(t *testing.T) {
	// Full depolarizing on one qubit of a Bell pair: reduced state is
	// maximally mixed, purity of the pair drops to 1/4... here we use the
	// standard 4-Kraus depolarizing with p=1 giving rho -> I/2 ⊗ tr_1 rho.
	p := 1.0
	i2 := qmath.Identity(2)
	x := gates.X(2).Matrix
	z := gates.Z(2).Matrix
	y := z.Mul(x).Scale(complex(0, 1))
	ks := []*qmath.Matrix{
		i2.Scale(complex(math.Sqrt(1-3*p/4), 0)),
		x.Scale(complex(math.Sqrt(p/4), 0)),
		y.Scale(complex(math.Sqrt(p/4), 0)),
		z.Scale(complex(math.Sqrt(p/4), 0)),
	}
	// Bell state.
	amps := qmath.Vector{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	r, err := FromPureAmplitudes(hilbert.Dims{2, 2}, amps)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyKraus(ks, []int{0}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Trace()-1) > tol {
		t.Errorf("trace after channel = %v", r.Trace())
	}
	red, err := r.PartialTrace([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Reduced state maximally mixed.
	if math.Abs(real(red.At(0, 0))-0.5) > 1e-9 || math.Abs(real(red.At(1, 1))-0.5) > 1e-9 {
		t.Errorf("reduced state not maximally mixed: %v", red.Matrix())
	}
}

func TestPartialTraceBell(t *testing.T) {
	amps := qmath.Vector{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	r, err := FromPureAmplitudes(hilbert.Dims{2, 2}, amps)
	if err != nil {
		t.Fatal(err)
	}
	red, err := r.PartialTrace([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if red.Dim() != 2 {
		t.Fatalf("reduced dim = %d", red.Dim())
	}
	if math.Abs(red.Purity()-0.5) > tol {
		t.Errorf("Bell reduced purity = %v, want 0.5", red.Purity())
	}
	s, err := red.VonNeumannEntropy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-8 {
		t.Errorf("Bell reduced entropy = %v bits, want 1", s)
	}
}

func TestPartialTraceProduct(t *testing.T) {
	// Product state: partial trace returns the factor exactly.
	v0 := qmath.Vector{1, 0, 0} // |0> qutrit
	v1 := qmath.Vector{0, 1}    // |1> qubit
	joint := qmath.KronVec(v0, v1)
	r, err := FromPureAmplitudes(hilbert.Dims{3, 2}, joint)
	if err != nil {
		t.Fatal(err)
	}
	red, err := r.PartialTrace([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(red.At(0, 0))-1) > tol {
		t.Errorf("product partial trace wrong: %v", red.Matrix())
	}
}

func TestPartialTraceTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	r := randomDM(t, rng, hilbert.Dims{2, 3, 2})
	red, err := r.PartialTrace([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(red.Trace()-1) > 1e-8 {
		t.Errorf("partial trace broke normalization: %v", red.Trace())
	}
}

func TestExpectation(t *testing.T) {
	r, err := NewZero(hilbert.Dims{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.X(4), 0); err != nil { // now |1>
		t.Fatal(err)
	}
	n := gates.Number(4)
	got, err := r.Expectation(n, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > tol {
		t.Errorf("<n> = %v, want 1", got)
	}
}

func TestExpectationMultiWire(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	dims := hilbert.Dims{2, 2}
	r := randomDM(t, rng, dims)
	// Oracle: dense trace.
	op := qmath.RandomHermitian(rng, 4)
	got, err := r.Expectation(op, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := real(r.Matrix().Mul(op).Trace())
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("Expectation = %v, dense trace = %v", got, want)
	}
}

func TestSampleFromDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	r, err := NewZero(hilbert.Dims{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.DFT(2), 0); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	counts := [2]int{}
	for _, s := range r.Sample(rng, n) {
		counts[s]++
	}
	frac := float64(counts[0]) / n
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("sampling bias %v", frac)
	}
}

func TestWireProbabilitiesDM(t *testing.T) {
	r, err := NewZero(hilbert.Dims{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(gates.X(3), 0); err != nil {
		t.Fatal(err)
	}
	p := r.WireProbabilities(0)
	if math.Abs(p[1]-1) > tol {
		t.Errorf("wire 0 dist = %v", p)
	}
}

func TestNormalize(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{2})
	m := r.Matrix().Scale(2)
	r2 := &DM{space: r.space, mat: m}
	r2.Normalize()
	if math.Abs(r2.Trace()-1) > tol {
		t.Errorf("normalize failed: %v", r2.Trace())
	}
}

func TestMostProbable(t *testing.T) {
	r, _ := NewZero(hilbert.Dims{2, 2})
	if err := r.Apply(gates.X(2), 1); err != nil {
		t.Fatal(err)
	}
	if got := r.MostProbable(); got != 1 {
		t.Errorf("MostProbable = %d, want 1", got)
	}
}
