// Package cavity models the physical substrate the paper forecasts: 3D
// SRF cavity modes with millisecond photon lifetimes, dispersively coupled
// to a transmon ancilla that mediates SNAP, displacement, beam-splitter
// and conditional-phase operations. The package provides Hamiltonian
// builders (for validating gate mechanisms against time evolution), a
// gate-duration model derived from the coupling rates, and coherence-
// budget fidelity estimates used by the resource-estimation experiments.
package cavity

import (
	"errors"
	"fmt"
	"math"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

// ErrBadParams indicates physically invalid module parameters.
var ErrBadParams = errors.New("cavity: invalid parameters")

// ModeParams describes one bosonic cavity mode used as a qudit.
type ModeParams struct {
	// Dim is the number of Fock levels used (the qudit dimension d).
	Dim int
	// FreqGHz is the mode frequency in GHz (bookkeeping only; dynamics are
	// computed in the rotating frame).
	FreqGHz float64
	// T1Sec is the single-photon lifetime in seconds.
	T1Sec float64
	// T2Sec is the dephasing time in seconds.
	T2Sec float64
}

// TransmonParams describes the ancilla transmon of a module.
type TransmonParams struct {
	T1Sec float64
	T2Sec float64
	// ChiHz is the dispersive shift chi/2pi between the transmon and each
	// cavity mode, in Hz. It sets the speed of SNAP (number-selective)
	// operations.
	ChiHz float64
	// AnharmHz is the transmon anharmonicity alpha/2pi in Hz.
	AnharmHz float64
}

// ModuleParams describes one cavity-transmon module: several long-lived
// modes sharing a transmon coupler.
type ModuleParams struct {
	Modes    []ModeParams
	Transmon TransmonParams
	// BeamsplitterHz is the activated photon-exchange rate g_bs/2pi
	// between two co-located modes (via bichromatic drive), in Hz.
	BeamsplitterHz float64
	// CrossKerrHz is the always-on (or drive-activated) cross-Kerr rate
	// chi_cc/2pi between co-located modes, in Hz. It sets the speed of
	// direct conditional-phase (CZ-class) gates.
	CrossKerrHz float64
}

// Validate checks physical sanity of the module parameters.
func (m ModuleParams) Validate() error {
	if len(m.Modes) == 0 {
		return fmt.Errorf("%w: no modes", ErrBadParams)
	}
	for i, md := range m.Modes {
		if md.Dim < 2 {
			return fmt.Errorf("%w: mode %d dim %d", ErrBadParams, i, md.Dim)
		}
		if md.T1Sec <= 0 || md.T2Sec <= 0 {
			return fmt.Errorf("%w: mode %d non-positive coherence", ErrBadParams, i)
		}
	}
	if m.Transmon.ChiHz <= 0 {
		return fmt.Errorf("%w: non-positive chi", ErrBadParams)
	}
	if m.BeamsplitterHz <= 0 || m.CrossKerrHz <= 0 {
		return fmt.Errorf("%w: non-positive coupling rates", ErrBadParams)
	}
	return nil
}

// ForecastModule returns the module the paper projects as feasible within
// five years: four modes per cavity, d ~ 10 photons, millisecond T1,
// MHz-scale dispersive shift, and typical demonstrated exchange rates.
func ForecastModule() ModuleParams {
	modes := make([]ModeParams, 4)
	for i := range modes {
		modes[i] = ModeParams{
			Dim:     10,
			FreqGHz: 5.0 + 0.25*float64(i),
			T1Sec:   1e-3,
			T2Sec:   0.8e-3,
		}
	}
	return ModuleParams{
		Modes: modes,
		Transmon: TransmonParams{
			T1Sec:    100e-6,
			T2Sec:    80e-6,
			ChiHz:    1.0e6,
			AnharmHz: 200e6,
		},
		BeamsplitterHz: 2.0e5,
		CrossKerrHz:    5.0e3,
	}
}

// SNAPDurationSec returns the duration of a selective number-dependent
// phase gate: the pulse must spectrally resolve the chi-split Fock peaks,
// requiring t ~ 2pi/chi (expressed with chi in Hz: t = 1/chi... the
// conventional estimate 2/chi is used, matching reported ~1-2 us gates at
// chi/2pi ~ 1 MHz).
func (m ModuleParams) SNAPDurationSec() float64 {
	return 2.0 / m.Transmon.ChiHz
}

// DisplacementDurationSec returns the duration of an unconditional
// displacement pulse (fast, limited only by pulse bandwidth).
func (m ModuleParams) DisplacementDurationSec() float64 {
	return 50e-9
}

// BeamsplitterDurationSec returns the time to accumulate a beam-splitter
// angle theta at the module's exchange rate: theta = 2 pi g t.
func (m ModuleParams) BeamsplitterDurationSec(theta float64) float64 {
	return math.Abs(theta) / (2 * math.Pi * m.BeamsplitterHz)
}

// CSUMRoute selects how a two-qudit entangler is realized on the module.
type CSUMRoute int

const (
	// RouteCrossKerr realizes CZ directly from the cross-Kerr interaction,
	// then CSUM by conjugating with mode Fourier transforms (SNAP +
	// displacement sequences).
	RouteCrossKerr CSUMRoute = iota + 1
	// RouteExchange realizes the entangler through O(d) beam-splitter +
	// SNAP blocks, trading cross-Kerr time for transmon-mediated blocks.
	RouteExchange
)

// String implements fmt.Stringer for diagnostics tables.
func (r CSUMRoute) String() string {
	switch r {
	case RouteCrossKerr:
		return "cross-Kerr"
	case RouteExchange:
		return "exchange"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// CZDurationSec returns the duration of a d-level conditional-phase gate
// via the cross-Kerr route. The gate needs exp(i 2 pi a b / d) on |a,b>,
// and the cross-Kerr interaction accumulates phase 2 pi chi_cc t a b;
// since conditional phases wrap modulo 2 pi, chi_cc t = 1/d suffices:
// t = 1 / (d chi_cc).
func (m ModuleParams) CZDurationSec(d int) float64 {
	return 1 / (float64(d) * m.CrossKerrHz)
}

// CSUMDurationSec returns the estimated duration of a CSUM between two
// co-located modes for the chosen route. The Fourier conjugations cost
// roughly d SNAP-displacement blocks each.
func (m ModuleParams) CSUMDurationSec(d int, route CSUMRoute) (float64, error) {
	fourier := float64(d) * (m.SNAPDurationSec() + 2*m.DisplacementDurationSec())
	switch route {
	case RouteCrossKerr:
		return m.CZDurationSec(d) + 2*fourier, nil
	case RouteExchange:
		// O(d) exchange blocks, each a partial beam-splitter plus SNAP.
		block := m.BeamsplitterDurationSec(math.Pi/2) + m.SNAPDurationSec()
		return float64(d)*block + 2*fourier, nil
	default:
		return 0, fmt.Errorf("%w: unknown CSUM route %d", ErrBadParams, int(route))
	}
}

// GateFidelityEstimate returns the coherence-limited fidelity of an
// operation of the given duration on a mode holding nbar photons on
// average: F = exp(-t (nbar/T1 + 1/T2)). This first-order estimate is the
// standard NISQ coherence budget.
func GateFidelityEstimate(durationSec, nbar, t1Sec, t2Sec float64) float64 {
	if durationSec < 0 || t1Sec <= 0 || t2Sec <= 0 {
		return 0
	}
	return math.Exp(-durationSec * (nbar/t1Sec + 1/t2Sec))
}

// LossPerGate converts a gate duration into the photon-loss probability
// gamma = 1 - exp(-t/T1) used by the discrete amplitude-damping channel.
func LossPerGate(durationSec, t1Sec float64) float64 {
	if t1Sec <= 0 {
		return 1
	}
	return 1 - math.Exp(-durationSec/t1Sec)
}

// DispersiveHamiltonian returns the rotating-frame dispersive Hamiltonian
// of one cavity mode (dimension d) coupled to the transmon qubit:
//
//	H/hbar = 2 pi chi * n ⊗ |e><e|
//
// on the joint (cavity ⊗ transmon) space. Evolving under H imprints a
// Fock-number-dependent phase conditioned on the transmon state — the
// physical mechanism behind SNAP.
func DispersiveHamiltonian(d int, chiHz float64) *qmath.Matrix {
	n := gates.Number(d)
	e := qmath.NewMatrix(2, 2)
	e.Set(1, 1, 1)
	return qmath.Kron(n, e).Scale(complex(2*math.Pi*chiHz, 0))
}

// BeamsplitterHamiltonian returns the activated exchange Hamiltonian
// between two modes: H/hbar = 2 pi g (a†b + a b†).
func BeamsplitterHamiltonian(d1, d2 int, gHz float64) *qmath.Matrix {
	a := gates.Lower(d1)
	b := gates.Lower(d2)
	h := qmath.Kron(a.Dagger(), b).Add(qmath.Kron(a, b.Dagger()))
	return h.Scale(complex(2*math.Pi*gHz, 0))
}

// CrossKerrHamiltonian returns the conditional-phase generator between two
// modes: H/hbar = -2 pi chi_cc (n ⊗ n).
func CrossKerrHamiltonian(d1, d2 int, chiccHz float64) *qmath.Matrix {
	return qmath.Kron(gates.Number(d1), gates.Number(d2)).Scale(complex(-2*math.Pi*chiccHz, 0))
}

// JaynesCummingsHamiltonian returns the full resonant JC Hamiltonian in
// the frame rotating at the cavity frequency, with transmon detuning
// deltaHz: H/hbar = 2 pi delta |e><e| + 2 pi g (a sigma+ + a† sigma-).
func JaynesCummingsHamiltonian(d int, deltaHz, gHz float64) *qmath.Matrix {
	a := gates.Lower(d)
	sp := qmath.NewMatrix(2, 2) // sigma+ = |e><g|
	sp.Set(1, 0, 1)
	sm := sp.Dagger()
	e := qmath.NewMatrix(2, 2)
	e.Set(1, 1, 1)
	h := qmath.Kron(qmath.Identity(d), e).Scale(complex(2*math.Pi*deltaHz, 0))
	h.AddInPlace(qmath.Kron(a, sp).Add(qmath.Kron(a.Dagger(), sm)).Scale(complex(2*math.Pi*gHz, 0)))
	return h
}
