package cavity

import (
	"math"
	"math/cmplx"
	"testing"

	"quditkit/internal/qmath"
)

func TestForecastModuleValid(t *testing.T) {
	m := ForecastModule()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Modes) != 4 {
		t.Errorf("forecast modes = %d, want 4", len(m.Modes))
	}
	for _, md := range m.Modes {
		if md.Dim != 10 {
			t.Errorf("forecast dim = %d, want 10", md.Dim)
		}
		if md.T1Sec < 0.5e-3 {
			t.Errorf("forecast T1 = %v, want millisecond scale", md.T1Sec)
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	m := ForecastModule()
	m.Modes = nil
	if err := m.Validate(); err == nil {
		t.Error("empty modes accepted")
	}
	m = ForecastModule()
	m.Modes[0].Dim = 1
	if err := m.Validate(); err == nil {
		t.Error("dim 1 accepted")
	}
	m = ForecastModule()
	m.Transmon.ChiHz = 0
	if err := m.Validate(); err == nil {
		t.Error("zero chi accepted")
	}
	m = ForecastModule()
	m.CrossKerrHz = -1
	if err := m.Validate(); err == nil {
		t.Error("negative cross-Kerr accepted")
	}
}

func TestDurationsScaleWithRates(t *testing.T) {
	m := ForecastModule()
	// SNAP at chi = 1 MHz -> 2 us.
	if d := m.SNAPDurationSec(); math.Abs(d-2e-6) > 1e-9 {
		t.Errorf("SNAP duration = %v, want 2e-6", d)
	}
	// Doubling chi halves the duration.
	m2 := m
	m2.Transmon.ChiHz *= 2
	if m2.SNAPDurationSec() >= m.SNAPDurationSec() {
		t.Error("SNAP duration did not shrink with larger chi")
	}
	// Beamsplitter: full swap at pi/2.
	d1 := m.BeamsplitterDurationSec(math.Pi / 2)
	d2 := m.BeamsplitterDurationSec(math.Pi)
	if math.Abs(d2-2*d1) > 1e-12 {
		t.Error("beamsplitter duration not linear in angle")
	}
}

func TestCSUMDurations(t *testing.T) {
	m := ForecastModule()
	for _, d := range []int{3, 4, 10} {
		tk, err := m.CSUMDurationSec(d, RouteCrossKerr)
		if err != nil {
			t.Fatal(err)
		}
		te, err := m.CSUMDurationSec(d, RouteExchange)
		if err != nil {
			t.Fatal(err)
		}
		if tk <= 0 || te <= 0 {
			t.Errorf("d=%d: non-positive durations %v %v", d, tk, te)
		}
		// With a 5 kHz cross-Kerr and d = 10, the direct route still costs
		// tens of microseconds — a noticeable slice of the millisecond T1
		// budget, the paper's "anticipated challenge".
		if d == 10 && tk < 1e-5 {
			t.Errorf("cross-Kerr CSUM at d=10 unexpectedly fast: %v s", tk)
		}
	}
	if _, err := m.CSUMDurationSec(4, CSUMRoute(99)); err == nil {
		t.Error("unknown route accepted")
	}
}

func TestGateFidelityEstimate(t *testing.T) {
	// Zero duration: perfect.
	if f := GateFidelityEstimate(0, 1, 1e-3, 1e-3); math.Abs(f-1) > 1e-12 {
		t.Errorf("zero-duration fidelity = %v", f)
	}
	// Longer gate, lower fidelity.
	f1 := GateFidelityEstimate(1e-6, 2, 1e-3, 1e-3)
	f2 := GateFidelityEstimate(1e-5, 2, 1e-3, 1e-3)
	if f2 >= f1 {
		t.Error("fidelity not monotone in duration")
	}
	// Invalid params.
	if GateFidelityEstimate(1e-6, 1, 0, 1e-3) != 0 {
		t.Error("invalid T1 not rejected")
	}
}

func TestLossPerGate(t *testing.T) {
	g := LossPerGate(1e-6, 1e-3)
	want := 1 - math.Exp(-1e-3)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("LossPerGate = %v, want %v", g, want)
	}
	if LossPerGate(1, 0) != 1 {
		t.Error("zero T1 should mean certain loss")
	}
}

func TestDispersiveEvolutionImplementsSNAPMechanism(t *testing.T) {
	// Evolving n ⊗ |e><e| for time t imprints phase e^{-i 2pi chi t n} on
	// Fock state |n> only when the transmon is excited.
	d := 4
	chi := 1e6
	tGate := 0.3e-6
	h := DispersiveHamiltonian(d, chi)
	u, err := qmath.ExpHermitian(h, complex(0, -tGate))
	if err != nil {
		t.Fatal(err)
	}
	// Transmon in |g>: no phase.
	for n := 0; n < d; n++ {
		in := qmath.KronVec(qmath.BasisVector(d, n), qmath.BasisVector(2, 0))
		out := u.MulVec(in)
		if cmplx.Abs(out.Dot(in)-1) > 1e-9 {
			t.Errorf("phase imprinted with transmon in |g> at n=%d", n)
		}
	}
	// Transmon in |e>: phase 2 pi chi t n.
	for n := 0; n < d; n++ {
		in := qmath.KronVec(qmath.BasisVector(d, n), qmath.BasisVector(2, 1))
		out := u.MulVec(in)
		wantPhase := cmplx.Exp(complex(0, -2*math.Pi*chi*tGate*float64(n)))
		if cmplx.Abs(in.Dot(out)-wantPhase) > 1e-9 {
			t.Errorf("n=%d: conditional phase wrong", n)
		}
	}
}

func TestBeamsplitterHamiltonianMatchesGate(t *testing.T) {
	// exp(-i H t) with H = 2 pi g (a†b + ab†) equals the BeamSplitter gate
	// at theta = 2 pi g t with phi = -pi/2 convention check via photon swap.
	d := 3
	g := 1e5
	// Quarter exchange: theta = pi/4... use full swap time: theta = pi/2.
	tSwap := (math.Pi / 2) / (2 * math.Pi * g)
	h := BeamsplitterHamiltonian(d, d, g)
	u, err := qmath.ExpHermitian(h, complex(0, -tSwap))
	if err != nil {
		t.Fatal(err)
	}
	in := qmath.KronVec(qmath.BasisVector(d, 1), qmath.BasisVector(d, 0))
	out := u.MulVec(in)
	want := qmath.KronVec(qmath.BasisVector(d, 0), qmath.BasisVector(d, 1))
	if !out.ApproxEqualUpToPhase(want, 1e-7) {
		t.Error("Hamiltonian beamsplitter did not swap the photon")
	}
}

func TestCrossKerrConditionalPhase(t *testing.T) {
	d := 3
	chicc := 5e3
	h := CrossKerrHamiltonian(d, d, chicc)
	// Evolve until |1,1> acquires phase +2pi/d relative to |0,*>:
	// phase(n1,n2) = +2 pi chicc t n1 n2; choose t so n1 n2 = 1 gives 2pi/3.
	tGate := (2 * math.Pi / 3) / (2 * math.Pi * chicc)
	u, err := qmath.ExpHermitian(h, complex(0, -tGate))
	if err != nil {
		t.Fatal(err)
	}
	in := qmath.KronVec(qmath.BasisVector(d, 1), qmath.BasisVector(d, 1))
	out := u.MulVec(in)
	got := in.Dot(out)
	want := cmplx.Exp(complex(0, 2*math.Pi/3))
	if cmplx.Abs(got-want) > 1e-9 {
		t.Errorf("cross-Kerr phase = %v, want %v", got, want)
	}
	// Vacuum in either mode: no phase.
	in0 := qmath.KronVec(qmath.BasisVector(d, 0), qmath.BasisVector(d, 2))
	out0 := u.MulVec(in0)
	if cmplx.Abs(in0.Dot(out0)-1) > 1e-9 {
		t.Error("cross-Kerr phased a vacuum component")
	}
}

func TestJaynesCummingsVacuumRabi(t *testing.T) {
	// Resonant JC: |g,1> <-> |e,0> vacuum Rabi oscillation at frequency
	// 2 g. After a half period the excitation has fully transferred.
	d := 3
	g := 1e6
	h := JaynesCummingsHamiltonian(d, 0, g)
	tHalf := 1.0 / (4 * g) // 2 pi g t = pi/2
	u, err := qmath.ExpHermitian(h, complex(0, -tHalf))
	if err != nil {
		t.Fatal(err)
	}
	// |1>_cav |g>: cavity index 1, transmon index 0.
	in := qmath.KronVec(qmath.BasisVector(d, 1), qmath.BasisVector(2, 0))
	out := u.MulVec(in)
	want := qmath.KronVec(qmath.BasisVector(d, 0), qmath.BasisVector(2, 1))
	if !out.ApproxEqualUpToPhase(want, 1e-7) {
		t.Errorf("vacuum Rabi transfer failed")
	}
}
