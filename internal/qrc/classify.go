package qrc

import (
	"fmt"
	"math/rand"

	"quditkit/internal/fit"
)

// ClassifyOptions configures the waveform-classification experiment (the
// analog microwave-processing workload of Senanian et al., ref [27]):
// labeled sine and square waveforms, optionally at few-photon amplitudes
// buried in noise, are fed through the reservoir; a linear readout on the
// final features is trained to separate the classes.
type ClassifyOptions struct {
	// Dim is the per-mode Fock truncation.
	Dim int
	// PerClass is the number of waveforms generated per class.
	PerClass int
	// SamplesPerWaveform is the waveform length. Zero selects 24.
	SamplesPerWaveform int
	// Amplitude scales the waveforms (small values = few-photon signals).
	Amplitude float64
	// NoiseStd is the additive Gaussian noise on the waveform samples.
	NoiseStd float64
	// TrainFrac splits the labeled set. Zero selects 0.6.
	TrainFrac float64
	// RidgeLambda regularizes the readout. Zero selects 1e-3.
	RidgeLambda float64
}

func (o ClassifyOptions) withDefaults() ClassifyOptions {
	if o.SamplesPerWaveform == 0 {
		o.SamplesPerWaveform = 24
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.6
	}
	if o.RidgeLambda == 0 {
		o.RidgeLambda = 1e-3
	}
	return o
}

// ClassifyWaveforms runs the full pipeline and returns the test accuracy
// of the trained linear classifier (sign of the ridge readout on the
// reservoir's final feature vector; labels sine = +1, square = -1).
func ClassifyWaveforms(rng *rand.Rand, opts ClassifyOptions) (float64, error) {
	if opts.Dim < 2 || opts.PerClass < 4 {
		return 0, fmt.Errorf("qrc: classify needs dim >= 2 and >= 4 waveforms per class")
	}
	opts = opts.withDefaults()

	type sample struct {
		features []float64
		label    float64
	}
	var samples []sample
	for _, class := range []WaveformClass{WaveSine, WaveSquare} {
		label := 1.0
		if class == WaveSquare {
			label = -1
		}
		for i := 0; i < opts.PerClass; i++ {
			wave := Waveform(rng, class, opts.SamplesPerWaveform, opts.Amplitude, opts.NoiseStd)
			r, err := NewReservoir(DefaultParams(opts.Dim))
			if err != nil {
				return 0, err
			}
			feats, err := r.Run(wave)
			if err != nil {
				return 0, err
			}
			// The classifier reads the time-averaged reservoir response
			// plus the final snapshot, capturing both the integrated
			// signal power and the end-of-signal transient.
			width := len(feats[0])
			row := make([]float64, 2*width)
			for _, f := range feats {
				for j, v := range f {
					row[j] += v / float64(len(feats))
				}
			}
			copy(row[width:], feats[len(feats)-1])
			samples = append(samples, sample{features: row, label: label})
		}
	}
	// Shuffle to interleave the classes before splitting.
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })

	split := int(opts.TrainFrac * float64(len(samples)))
	if split < 2 || len(samples)-split < 2 {
		return 0, fmt.Errorf("qrc: classify split leaves empty side")
	}
	x := make([][]float64, 0, split)
	y := make([]float64, 0, split)
	for _, s := range samples[:split] {
		x = append(x, append(append([]float64(nil), s.features...), 1))
		y = append(y, s.label)
	}
	w, err := fit.Ridge(x, y, opts.RidgeLambda)
	if err != nil {
		return 0, fmt.Errorf("classifier readout: %w", err)
	}
	correct := 0
	for _, s := range samples[split:] {
		row := append(append([]float64(nil), s.features...), 1)
		var score float64
		for j, v := range row {
			score += v * w[j]
		}
		if (score >= 0) == (s.label > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(samples)-split), nil
}
