package qrc

import (
	"fmt"
	"math"
	"math/rand"
)

// NARMA2 generates the second-order nonlinear autoregressive moving
// average benchmark: inputs u ~ U[0, 0.5] and targets
//
//	y(t+1) = 0.4 y(t) + 0.4 y(t) y(t-1) + 0.6 u(t)^3 + 0.1.
//
// It returns aligned (inputs, targets) of the given length.
func NARMA2(rng *rand.Rand, n int) ([]float64, []float64) {
	u := make([]float64, n)
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		u[t] = 0.5 * rng.Float64()
	}
	for t := 1; t < n-1; t++ {
		y[t+1] = 0.4*y[t] + 0.4*y[t]*y[t-1] + 0.6*u[t]*u[t]*u[t] + 0.1
	}
	return u, y
}

// NARMA10 generates the canonical tenth-order NARMA benchmark.
func NARMA10(rng *rand.Rand, n int) ([]float64, []float64) {
	u := make([]float64, n)
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		u[t] = 0.5 * rng.Float64()
	}
	for t := 9; t < n-1; t++ {
		var sum float64
		for k := 0; k < 10; k++ {
			sum += y[t-k]
		}
		y[t+1] = 0.3*y[t] + 0.05*y[t]*sum + 1.5*u[t]*u[t-9] + 0.1
	}
	return u, y
}

// MackeyGlass integrates the Mackey-Glass delay differential equation
//
//	dx/dt = beta x(t-tau) / (1 + x(t-tau)^n) - gamma x(t)
//
// with the chaotic standard parameters (beta=0.2, gamma=0.1, n=10,
// tau=17) and returns a series sampled at unit intervals, rescaled to
// [0, 1].
func MackeyGlass(n int, tau float64) ([]float64, error) {
	if n < 2 || tau <= 0 {
		return nil, fmt.Errorf("qrc: bad Mackey-Glass parameters n=%d tau=%v", n, tau)
	}
	const (
		beta  = 0.2
		gamma = 0.1
		power = 10.0
		dt    = 0.1
	)
	delaySteps := int(tau / dt)
	total := n*10 + delaySteps + 100
	x := make([]float64, total)
	for i := 0; i <= delaySteps; i++ {
		x[i] = 1.2
	}
	deriv := func(cur, delayed float64) float64 {
		return beta*delayed/(1+math.Pow(delayed, power)) - gamma*cur
	}
	for t := delaySteps; t < total-1; t++ {
		// RK4 with linear interpolation on the delayed value (adequate at
		// this step size).
		xd := x[t-delaySteps]
		k1 := deriv(x[t], xd)
		k2 := deriv(x[t]+dt/2*k1, xd)
		k3 := deriv(x[t]+dt/2*k2, xd)
		k4 := deriv(x[t]+dt*k3, xd)
		x[t+1] = x[t] + dt/6*(k1+2*k2+2*k3+k4)
	}
	// Sample every 10 steps after the transient, rescale to [0, 1].
	out := make([]float64, n)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		v := x[delaySteps+100+i*10]
		out[i] = v
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > lo {
		for i := range out {
			out[i] = (out[i] - lo) / (hi - lo)
		}
	}
	return out, nil
}

// WaveformClass identifies a generated waveform type.
type WaveformClass int

const (
	// WaveSine is a sinusoid.
	WaveSine WaveformClass = iota + 1
	// WaveSquare is a square wave.
	WaveSquare
)

// Waveform generates one period-pi waveform of the given class with n
// samples and amplitude amp, plus additive Gaussian noise sigma — the
// microwave-classification workload of the analog QRC experiment
// (few-photon signals embedded in noise).
func Waveform(rng *rand.Rand, class WaveformClass, n int, amp, sigma float64) []float64 {
	out := make([]float64, n)
	phase := 2 * math.Pi * rng.Float64()
	freq := 2 * math.Pi / float64(n) * 3
	for t := range out {
		var v float64
		switch class {
		case WaveSquare:
			if math.Sin(freq*float64(t)+phase) >= 0 {
				v = 1
			} else {
				v = -1
			}
		default:
			v = math.Sin(freq*float64(t) + phase)
		}
		out[t] = amp*v + sigma*rng.NormFloat64()
	}
	return out
}
