package qrc

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(ReservoirParams{Modes: 0}); err == nil {
		t.Error("zero modes accepted")
	}
	p := DefaultParams(4)
	p.Omega = []float64{1}
	if _, err := NewReservoir(p); err == nil {
		t.Error("omega length mismatch accepted")
	}
	p = DefaultParams(4)
	p.StepTime = 0
	if _, err := NewReservoir(p); err == nil {
		t.Error("zero step time accepted")
	}
}

func TestReservoirVacuumAndDrive(t *testing.T) {
	r, err := NewReservoir(DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	f := r.Features()
	if math.Abs(f[0]-1) > 1e-10 {
		t.Errorf("vacuum population = %v", f[0])
	}
	// Feed a nonzero input: photons appear in both modes via the
	// exchange coupling.
	for i := 0; i < 3; i++ {
		if err := r.Feed(0.5); err != nil {
			t.Fatal(err)
		}
	}
	photons := r.MeanPhotons()
	if photons[0] < 1e-3 {
		t.Errorf("driven mode photons = %v", photons[0])
	}
	if photons[1] < 1e-4 {
		t.Errorf("coupled mode did not populate: %v", photons[1])
	}
	// Feature normalization: probabilities sum to ~1.
	var sum float64
	for _, p := range r.Features() {
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("feature sum = %v", sum)
	}
}

func TestReservoirFadingMemory(t *testing.T) {
	// With dissipation and no input, the reservoir relaxes to vacuum:
	// the echo-state (fading memory) property.
	r, err := NewReservoir(DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Feed(1.0); err != nil {
		t.Fatal(err)
	}
	after := r.MeanPhotons()[0]
	for i := 0; i < 40; i++ {
		if err := r.Feed(0); err != nil {
			t.Fatal(err)
		}
	}
	final := r.MeanPhotons()[0]
	if final > after/4 {
		t.Errorf("memory did not fade: %v -> %v", after, final)
	}
}

func TestReservoirTruncationHealthy(t *testing.T) {
	r, err := NewReservoir(DefaultParams(6))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		if err := r.Feed(0.5 * rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if top := r.TopOccupation(); top > 0.02 {
		t.Errorf("truncation unhealthy: top-level occupation %v", top)
	}
}

func TestNARMA2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u, y := NARMA2(rng, 200)
	if len(u) != 200 || len(y) != 200 {
		t.Fatal("wrong lengths")
	}
	for _, v := range u {
		if v < 0 || v > 0.5 {
			t.Fatalf("input out of range: %v", v)
		}
	}
	// The target depends on history: it must not be constant.
	varsum := 0.0
	for i := 10; i < len(y); i++ {
		varsum += math.Abs(y[i] - y[i-1])
	}
	if varsum < 0.1 {
		t.Error("NARMA2 target is flat")
	}
}

func TestMackeyGlass(t *testing.T) {
	xs, err := MackeyGlass(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 300 {
		t.Fatalf("len = %d", len(xs))
	}
	lo, hi := 1.0, 0.0
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo < -1e-9 || hi > 1+1e-9 || hi-lo < 0.5 {
		t.Errorf("range [%v, %v] not rescaled/chaotic", lo, hi)
	}
	if _, err := MackeyGlass(1, 17); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestESNEchoState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, err := NewESN(rng, 30, 0.9, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Same input from different initial conditions converges (echo state).
	inputs := make([]float64, 80)
	for i := range inputs {
		inputs[i] = rng.Float64()
	}
	s1, err := e.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Run again but with a perturbed start: manually set state, feed.
	e.Reset()
	for i := range e.x {
		e.x[i] = 0.5
	}
	var s2 [][]float64
	for _, u := range inputs {
		nx := make([]float64, e.n)
		for i := 0; i < e.n; i++ {
			s := e.wIn[i] * u
			for j, xj := range e.x {
				s += e.w[i][j] * xj
			}
			nx[i] = math.Tanh(s)
		}
		e.x = nx
		snap := make([]float64, e.n)
		copy(snap, nx)
		s2 = append(s2, snap)
	}
	var diff float64
	last := len(inputs) - 1
	for i := range s1[last] {
		diff += math.Abs(s1[last][i] - s2[last][i])
	}
	if diff > 1e-3 {
		t.Errorf("echo state property violated: final diff %v", diff)
	}
}

func TestESNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewESN(rng, 0, 0.9, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewESN(rng, 10, 2.0, 1, 1); err == nil {
		t.Error("rho=2 accepted")
	}
}

func TestQuantumReservoirLearnsNARMA2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u, y := NARMA2(rng, 120)
	r, err := NewReservoir(DefaultParams(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateTask(r, u, y, 10, 0.7, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestNMSE > 0.3 {
		t.Errorf("QRC NARMA2 test NMSE = %v, expected < 0.3", res.TestNMSE)
	}
	// 4 virtual nodes x (16 populations + 6 quadrature taps) + input + bias.
	if res.Features != 4*(16+6)+2 {
		t.Errorf("features = %d, want %d", res.Features, 4*(16+6)+2)
	}
}

func TestESNLearnsNARMA2(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	u, y := NARMA2(rng, 200)
	e, err := NewESN(rng, 40, 0.9, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateTask(e, u, y, 20, 0.7, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestNMSE > 0.5 {
		t.Errorf("ESN NARMA2 test NMSE = %v", res.TestNMSE)
	}
}

func TestEvaluateTaskValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, _ := NewESN(rng, 5, 0.9, 1, 1)
	if _, err := EvaluateTask(e, []float64{1}, []float64{1, 2}, 0, 0.5, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	u := make([]float64, 30)
	if _, err := EvaluateTask(e, u, u, 29, 0.5, 0); err == nil {
		t.Error("excessive washout accepted")
	}
	if _, err := EvaluateTask(e, u, u, 0, 1.5, 0); err == nil {
		t.Error("bad train fraction accepted")
	}
}

func TestShotSamplingDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	u, y := NARMA2(rng, 100)
	base := DefaultParams(4)
	r, err := NewReservoir(base)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EvaluateTask(r, u, y, 10, 0.7, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReservoir(base)
	if err != nil {
		t.Fatal(err)
	}
	few := &ShotSampledProvider{Reservoir: r2, Shots: 16, Rng: rand.New(rand.NewSource(18))}
	noisy, err := EvaluateTask(few, u, y, 10, 0.7, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.TestNMSE <= exact.TestNMSE {
		t.Errorf("16-shot NMSE %v not worse than exact %v", noisy.TestNMSE, exact.TestNMSE)
	}
	r3, err := NewReservoir(base)
	if err != nil {
		t.Fatal(err)
	}
	many := &ShotSampledProvider{Reservoir: r3, Shots: 4096, Rng: rand.New(rand.NewSource(19))}
	fine, err := EvaluateTask(many, u, y, 10, 0.7, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if fine.TestNMSE >= noisy.TestNMSE {
		t.Errorf("4096-shot NMSE %v not better than 16-shot %v", fine.TestNMSE, noisy.TestNMSE)
	}
}

func TestWaveformClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sine := Waveform(rng, WaveSine, 64, 1, 0)
	square := Waveform(rng, WaveSquare, 64, 1, 0)
	// A square wave only takes values ±1; a sine covers the range.
	for _, v := range square {
		if math.Abs(math.Abs(v)-1) > 1e-9 {
			t.Fatalf("square value %v", v)
		}
	}
	mid := 0
	for _, v := range sine {
		if math.Abs(v) < 0.5 {
			mid++
		}
	}
	if mid == 0 {
		t.Error("sine has no intermediate values")
	}
}

func TestTomographyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opts := TomographyOptions{Dim: 4, TrainStates: 80, ProbeCount: 40}
	fid, err := EvaluateTomography(rng, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fid < 0.95 {
		t.Errorf("mean tomography fidelity = %v, expected >= 0.95", fid)
	}
}

func TestTomographyFidelityGrowsWithTraining(t *testing.T) {
	fidSmall, err := EvaluateTomography(rand.New(rand.NewSource(29)),
		TomographyOptions{Dim: 3, TrainStates: 10, ProbeCount: 20}, 12)
	if err != nil {
		t.Fatal(err)
	}
	fidLarge, err := EvaluateTomography(rand.New(rand.NewSource(29)),
		TomographyOptions{Dim: 3, TrainStates: 120, ProbeCount: 20}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fidLarge <= fidSmall-0.02 {
		t.Errorf("fidelity did not grow with training: %v -> %v", fidSmall, fidLarge)
	}
	if fidLarge < 0.9 {
		t.Errorf("well-trained fidelity = %v", fidLarge)
	}
}

func TestTomographyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainTomography(rng, TomographyOptions{Dim: 1}); err == nil {
		t.Error("dim=1 accepted")
	}
	model, err := TrainTomography(rng, TomographyOptions{Dim: 3, TrainStates: 30, ProbeCount: 15})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Reconstruct([]float64{1, 2}); err == nil {
		t.Error("wrong feature count accepted")
	}
}

func TestStateParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 4
	rho := randomHermitianForTest(rng, d)
	params := stateParams(rho)
	if len(params) != paramCount(d) {
		t.Fatalf("param count = %d", len(params))
	}
	back := paramsToMatrix(d, params)
	if !back.ApproxEqual(rho, 1e-12) {
		t.Error("params round trip failed")
	}
}

func TestClassifyWaveformsCleanSignals(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	acc, err := ClassifyWaveforms(rng, ClassifyOptions{
		Dim:       4,
		PerClass:  12,
		Amplitude: 1.0,
		NoiseStd:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("clean-signal accuracy = %v, expected >= 0.85", acc)
	}
}

func TestClassifyWaveformsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ClassifyWaveforms(rng, ClassifyOptions{Dim: 1, PerClass: 12}); err == nil {
		t.Error("dim=1 accepted")
	}
	if _, err := ClassifyWaveforms(rng, ClassifyOptions{Dim: 4, PerClass: 2}); err == nil {
		t.Error("2 per class accepted")
	}
}
