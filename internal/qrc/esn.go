package qrc

import (
	"fmt"
	"math"
	"math/rand"
)

// ESN is a classical echo-state network baseline: a random sparse
// recurrent reservoir with tanh nonlinearity,
//
//	x(t+1) = tanh(W x(t) + w_in u(t)),
//
// with W rescaled to a target spectral radius < 1 for the echo-state
// property. Comparing the quantum reservoir against ESNs of growing size
// reproduces the reference study's "equivalent neurons" claim.
type ESN struct {
	n    int
	w    [][]float64
	wIn  []float64
	x    []float64
	leak float64
}

// NewESN builds an ESN with n neurons, target spectral radius rho, input
// scale, and leak rate (1 = no leaking).
func NewESN(rng *rand.Rand, n int, rho, inputScale, leak float64) (*ESN, error) {
	if n < 1 || rho <= 0 || rho >= 1.5 || leak <= 0 || leak > 1 {
		return nil, fmt.Errorf("qrc: bad ESN parameters n=%d rho=%v leak=%v", n, rho, leak)
	}
	e := &ESN{n: n, leak: leak}
	e.w = make([][]float64, n)
	const density = 0.2
	for i := range e.w {
		e.w[i] = make([]float64, n)
		for j := range e.w[i] {
			if rng.Float64() < density {
				e.w[i][j] = rng.NormFloat64()
			}
		}
	}
	// Power iteration for the spectral radius estimate.
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	var lambda float64
	for iter := 0; iter < 60; iter++ {
		nv := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += e.w[i][j] * v[j]
			}
			nv[i] = s
		}
		var norm float64
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		lambda = norm
		for i := range nv {
			nv[i] /= norm
		}
		v = nv
	}
	if lambda > 0 {
		scale := rho / lambda
		for i := range e.w {
			for j := range e.w[i] {
				e.w[i][j] *= scale
			}
		}
	}
	e.wIn = make([]float64, n)
	for i := range e.wIn {
		e.wIn[i] = inputScale * (2*rng.Float64() - 1)
	}
	e.Reset()
	return e, nil
}

// Size returns the neuron count.
func (e *ESN) Size() int { return e.n }

// Reset zeroes the reservoir state.
func (e *ESN) Reset() { e.x = make([]float64, e.n) }

// Run resets the network, feeds the input sequence, and returns the state
// vector after each sample.
func (e *ESN) Run(inputs []float64) ([][]float64, error) {
	e.Reset()
	out := make([][]float64, 0, len(inputs))
	for _, u := range inputs {
		nx := make([]float64, e.n)
		for i := 0; i < e.n; i++ {
			s := e.wIn[i] * u
			row := e.w[i]
			for j, xj := range e.x {
				s += row[j] * xj
			}
			nx[i] = (1-e.leak)*e.x[i] + e.leak*math.Tanh(s)
		}
		e.x = nx
		snapshot := make([]float64, e.n)
		copy(snapshot, nx)
		out = append(out, snapshot)
	}
	return out, nil
}
