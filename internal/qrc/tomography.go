package qrc

import (
	"fmt"
	"math"
	"math/rand"

	"quditkit/internal/fit"
	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

// TomographyOptions configures the reservoir-processing state tomography
// of Krisnanda et al.: calibrated displacements followed by transmon
// parity measurements produce features from which a trained linear map
// reconstructs unknown cavity states, with a physicality projection
// replacing the reference's Bayesian step.
type TomographyOptions struct {
	// Dim is the cavity truncation (the reconstructed density matrix is
	// Dim x Dim).
	Dim int
	// WorkDim is the Fock truncation in which displacements act. It must
	// exceed Dim: in truncated space the displaced-parity observables
	// restricted to Dim levels span the full d^2-dimensional Hermitian
	// space only when the displacement can explore levels above the
	// logical subspace, exactly as on hardware. Zero selects 3*Dim.
	WorkDim int
	// ProbeCount is the number of displacement probes. Zero selects
	// 2*Dim^2 (twice the parameter count, comfortably overdetermined).
	ProbeCount int
	// TrainStates is the number of random calibration states. Zero
	// selects 4*Dim^2.
	TrainStates int
	// MaxAlpha scales the probe displacement magnitudes. Zero selects 1.2.
	MaxAlpha float64
	// RidgeLambda regularizes the readout. Zero selects 1e-6.
	RidgeLambda float64
}

func (o TomographyOptions) withDefaults() TomographyOptions {
	if o.WorkDim == 0 {
		o.WorkDim = 3 * o.Dim
	}
	if o.ProbeCount == 0 {
		o.ProbeCount = 2 * o.Dim * o.Dim
	}
	if o.TrainStates == 0 {
		o.TrainStates = 4 * o.Dim * o.Dim
	}
	if o.MaxAlpha == 0 {
		o.MaxAlpha = 1.2
	}
	if o.RidgeLambda == 0 {
		o.RidgeLambda = 1e-6
	}
	return o
}

// TomographyModel is a trained reservoir-tomography readout.
type TomographyModel struct {
	dim     int
	workDim int
	probes  []*qmath.Matrix // displacement unitaries on the working space
	parity  *qmath.Matrix   // parity on the working space
	weights [][]float64     // one readout vector per density-matrix parameter
}

// paramCount returns the number of real parameters of a d x d Hermitian
// unit-trace matrix (we learn all d^2 and project afterwards).
func paramCount(d int) int { return d * d }

// stateParams flattens a Hermitian matrix to real parameters: the
// diagonal, then (real, imag) of the upper triangle.
func stateParams(rho *qmath.Matrix) []float64 {
	d := rho.Rows
	out := make([]float64, 0, paramCount(d))
	for i := 0; i < d; i++ {
		out = append(out, real(rho.At(i, i)))
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, real(rho.At(i, j)), imag(rho.At(i, j)))
		}
	}
	return out
}

// paramsToMatrix inverts stateParams.
func paramsToMatrix(d int, p []float64) *qmath.Matrix {
	m := qmath.NewMatrix(d, d)
	idx := 0
	for i := 0; i < d; i++ {
		m.Set(i, i, complex(p[idx], 0))
		idx++
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := complex(p[idx], p[idx+1])
			idx += 2
			m.Set(i, j, v)
			m.Set(j, i, complex(real(v), -imag(v)))
		}
	}
	return m
}

// TrainTomography calibrates the reservoir readout on random known
// states.
func TrainTomography(rng *rand.Rand, opts TomographyOptions) (*TomographyModel, error) {
	if opts.Dim < 2 {
		return nil, fmt.Errorf("qrc: tomography dim %d", opts.Dim)
	}
	opts = opts.withDefaults()
	if opts.WorkDim <= opts.Dim {
		return nil, fmt.Errorf("qrc: work dim %d must exceed dim %d", opts.WorkDim, opts.Dim)
	}
	d := opts.Dim
	model := &TomographyModel{
		dim:     d,
		workDim: opts.WorkDim,
		parity:  gates.FockParity(opts.WorkDim),
	}
	for k := 0; k < opts.ProbeCount; k++ {
		r := opts.MaxAlpha * math.Sqrt(rng.Float64())
		th := 2 * math.Pi * rng.Float64()
		alpha := complex(r*math.Cos(th), r*math.Sin(th))
		model.probes = append(model.probes, gates.Displacement(opts.WorkDim, alpha).Matrix)
	}

	nParams := paramCount(d)
	x := make([][]float64, 0, opts.TrainStates)
	ys := make([][]float64, nParams)
	for i := range ys {
		ys[i] = make([]float64, 0, opts.TrainStates)
	}
	for s := 0; s < opts.TrainStates; s++ {
		var rho *qmath.Matrix
		if s%2 == 0 {
			rho = qmath.RandomDensityMatrix(rng, d)
		} else {
			psi := qmath.RandomState(rng, d)
			rho = psi.Outer(psi)
		}
		x = append(x, model.Features(rho))
		for i, v := range stateParams(rho) {
			ys[i] = append(ys[i], v)
		}
	}
	// Append bias column.
	for i := range x {
		x[i] = append(x[i], 1)
	}
	model.weights = make([][]float64, nParams)
	for i := 0; i < nParams; i++ {
		w, err := fit.Ridge(x, ys[i], opts.RidgeLambda)
		if err != nil {
			return nil, fmt.Errorf("readout %d: %w", i, err)
		}
		model.weights[i] = w
	}
	return model, nil
}

// Features returns the displaced-parity feature vector of a state:
// f_k = Tr(D_k rho D_k† P), the Wigner-style observable the transmon
// measures after each calibrated displacement. The logical state is
// embedded into the working space before displacing, as on hardware.
func (m *TomographyModel) Features(rho *qmath.Matrix) []float64 {
	emb := qmath.NewMatrix(m.workDim, m.workDim)
	for i := 0; i < m.dim; i++ {
		for j := 0; j < m.dim; j++ {
			emb.Set(i, j, rho.At(i, j))
		}
	}
	out := make([]float64, len(m.probes))
	for k, dk := range m.probes {
		shifted := dk.Mul(emb).Mul(dk.Dagger())
		out[k] = real(shifted.Mul(m.parity).Trace())
	}
	return out
}

// Reconstruct estimates the density matrix of an unknown state from its
// features: linear readout, then projection onto the physical set
// (Hermitization, eigenvalue clipping, trace renormalization).
func (m *TomographyModel) Reconstruct(features []float64) (*qmath.Matrix, error) {
	if len(features) != len(m.probes) {
		return nil, fmt.Errorf("qrc: %d features for %d probes", len(features), len(m.probes))
	}
	row := append(append([]float64(nil), features...), 1)
	params := make([]float64, len(m.weights))
	for i, w := range m.weights {
		var s float64
		for j, v := range row {
			s += v * w[j]
		}
		params[i] = s
	}
	raw := paramsToMatrix(m.dim, params)
	// Physicality projection: clip negative eigenvalues, renormalize.
	eig, err := qmath.EigHermitian(raw)
	if err != nil {
		return nil, fmt.Errorf("projection: %w", err)
	}
	var total float64
	clipped := make([]float64, len(eig.Values))
	for i, v := range eig.Values {
		if v > 0 {
			clipped[i] = v
			total += v
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("qrc: reconstruction collapsed to zero")
	}
	dvals := make([]complex128, len(clipped))
	for i, v := range clipped {
		dvals[i] = complex(v/total, 0)
	}
	return eig.Vectors.Mul(qmath.Diag(dvals)).Mul(eig.Vectors.Dagger()), nil
}

// ReconstructState runs the full pipeline on an unknown state.
func (m *TomographyModel) ReconstructState(rho *qmath.Matrix) (*qmath.Matrix, error) {
	return m.Reconstruct(m.Features(rho))
}

// EvaluateTomography trains a model and scores the mean reconstruction
// fidelity <psi| rho_est |psi> over random pure test states.
func EvaluateTomography(rng *rand.Rand, opts TomographyOptions, testStates int) (float64, error) {
	model, err := TrainTomography(rng, opts)
	if err != nil {
		return 0, err
	}
	if testStates < 1 {
		return 0, fmt.Errorf("qrc: testStates=%d", testStates)
	}
	var sum float64
	for s := 0; s < testStates; s++ {
		psi := qmath.RandomState(rng, opts.Dim)
		rho := psi.Outer(psi)
		est, err := model.ReconstructState(rho)
		if err != nil {
			return 0, err
		}
		sum += real(psi.Dot(est.MulVec(psi)))
	}
	return sum / float64(testStates), nil
}
