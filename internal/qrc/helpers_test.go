package qrc

import (
	"math/rand"

	"quditkit/internal/qmath"
)

// randomHermitianForTest returns a random Hermitian matrix via qmath.
func randomHermitianForTest(rng *rand.Rand, d int) *qmath.Matrix {
	return qmath.RandomHermitian(rng, d)
}
