// Package qrc implements the quantum-machine-learning application of the
// paper (§II.C): quantum reservoir computing on coupled dissipative
// cavity modes (after Dudas et al., npj QI 9, 64 (2023)), with Fock-basis
// "neuron" feature maps, ridge readout, time-series and waveform tasks, a
// classical echo-state-network baseline, finite-shot feature estimation
// (the paper's "sampling overhead" challenge), and reservoir-processing
// quantum state tomography (after Krisnanda et al., arXiv:2412.11015).
package qrc

import (
	"errors"
	"fmt"
	"math"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/noise"
	"quditkit/internal/qmath"
)

// ErrBadReservoir indicates invalid reservoir parameters.
var ErrBadReservoir = errors.New("qrc: invalid reservoir")

// ReservoirParams describes the coupled-oscillator analog reservoir
//
//	H = sum_i omega_i n_i + g (a_1† a_2 + h.c.) + eps u(t) (a_1 + a_1†)
//
// with per-mode photon loss kappa_i. All rates are dimensionless (units
// of the inverse input-sample duration).
type ReservoirParams struct {
	// Modes is the number of oscillators (2 in the reference study).
	Modes int
	// Dim is the Fock truncation per mode: Dim levels give Dim^Modes
	// "neurons" (81 at Dim=9, Modes=2).
	Dim int
	// Omega lists the mode detunings.
	Omega []float64
	// G is the exchange coupling between consecutive modes.
	G float64
	// Kappa lists per-mode dissipation rates.
	Kappa []float64
	// InputGain is the drive amplitude per unit input, applied to mode 0.
	InputGain float64
	// StepTime is the evolution time per input sample.
	StepTime float64
	// Substeps is the number of RK4 substeps per input sample. Zero
	// selects 10.
	Substeps int
	// VirtualNodes is the time-multiplexing factor: the number of feature
	// snapshots recorded per input sample (the standard trick that
	// multiplies the effective neuron count). Zero selects 1.
	VirtualNodes int
	// QuadratureTaps adds <x>, <p>, <n> of every mode to each feature
	// snapshot, capturing coherence information the populations miss.
	QuadratureTaps bool
	// IncludeInput appends the (classically known) raw input value to the
	// per-sample features, standard reservoir-computing practice.
	IncludeInput bool
}

// DefaultParams returns the two-mode reservoir of the reference study
// scaled to a given truncation.
func DefaultParams(dim int) ReservoirParams {
	return ReservoirParams{
		Modes:          2,
		Dim:            dim,
		Omega:          []float64{0.5, 1.3},
		G:              1.0,
		Kappa:          []float64{0.3, 0.2},
		InputGain:      1.5,
		StepTime:       2.0,
		Substeps:       16,
		VirtualNodes:   4,
		QuadratureTaps: true,
		IncludeInput:   true,
	}
}

// Validate checks the parameters.
func (p ReservoirParams) Validate() error {
	if p.Modes < 1 {
		return fmt.Errorf("%w: modes=%d", ErrBadReservoir, p.Modes)
	}
	if p.Dim < 2 {
		return fmt.Errorf("%w: dim=%d", ErrBadReservoir, p.Dim)
	}
	if len(p.Omega) != p.Modes || len(p.Kappa) != p.Modes {
		return fmt.Errorf("%w: omega/kappa length mismatch", ErrBadReservoir)
	}
	if p.StepTime <= 0 {
		return fmt.Errorf("%w: step time %v", ErrBadReservoir, p.StepTime)
	}
	return nil
}

// Neurons returns the feature dimension Dim^Modes.
func (p ReservoirParams) Neurons() int {
	n := 1
	for i := 0; i < p.Modes; i++ {
		n *= p.Dim
	}
	return n
}

// Reservoir is a stateful quantum reservoir.
type Reservoir struct {
	params   ReservoirParams
	space    *hilbert.Space
	h0       *qmath.Matrix // static Hamiltonian
	drive    *qmath.Matrix // input coupling operator (a_0 + a_0†)
	collapse []*qmath.Matrix
	rho      *qmath.Matrix
	substeps int
	virtual  int
	// quadrature observables per mode (embedded), built on demand
	xOps, pOps, nOps []*qmath.Matrix
}

// NewReservoir builds the reservoir in its vacuum state.
func NewReservoir(p ReservoirParams) (*Reservoir, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sp, err := hilbert.NewSpace(hilbert.Uniform(p.Modes, p.Dim))
	if err != nil {
		return nil, err
	}
	dim := sp.Total()
	r := &Reservoir{params: p, space: sp, substeps: p.Substeps}
	if r.substeps == 0 {
		r.substeps = 10
	}

	// Static Hamiltonian: detunings + nearest-neighbor exchange.
	h := qmath.NewMatrix(dim, dim)
	for m := 0; m < p.Modes; m++ {
		n := embedOp(sp, gates.Number(p.Dim), m)
		h.AddScaledInPlace(complex(p.Omega[m], 0), n)
	}
	for m := 0; m+1 < p.Modes; m++ {
		a1 := embedOp(sp, gates.Lower(p.Dim), m)
		a2 := embedOp(sp, gates.Lower(p.Dim), m+1)
		ex := a1.Dagger().Mul(a2)
		ex.AddInPlace(a2.Dagger().Mul(a1))
		h.AddScaledInPlace(complex(p.G, 0), ex)
	}
	r.h0 = h

	a0 := embedOp(sp, gates.Lower(p.Dim), 0)
	r.drive = a0.Add(a0.Dagger()).Scale(complex(p.InputGain, 0))

	for m := 0; m < p.Modes; m++ {
		if p.Kappa[m] <= 0 {
			continue
		}
		c := embedOp(sp, gates.Lower(p.Dim), m).Scale(complex(math.Sqrt(p.Kappa[m]), 0))
		r.collapse = append(r.collapse, c)
	}
	r.virtual = p.VirtualNodes
	if r.virtual < 1 {
		r.virtual = 1
	}
	if p.QuadratureTaps {
		for m := 0; m < p.Modes; m++ {
			r.xOps = append(r.xOps, embedOp(sp, gates.Position(p.Dim), m))
			r.pOps = append(r.pOps, embedOp(sp, gates.Momentum(p.Dim), m))
			r.nOps = append(r.nOps, embedOp(sp, gates.Number(p.Dim), m))
		}
	}
	r.Reset()
	return r, nil
}

// embedOp lifts a single-mode operator to the full register.
func embedOp(sp *hilbert.Space, op *qmath.Matrix, mode int) *qmath.Matrix {
	dim := sp.Total()
	out := qmath.NewMatrix(dim, dim)
	offsets := sp.TargetOffsets([]int{mode})
	sp.SubspaceIter([]int{mode}, func(base int) {
		for i := 0; i < op.Rows; i++ {
			for j := 0; j < op.Cols; j++ {
				v := op.At(i, j)
				if v != 0 {
					out.Set(base+offsets[i], base+offsets[j], v)
				}
			}
		}
	})
	return out
}

// Params returns the reservoir parameters.
func (r *Reservoir) Params() ReservoirParams { return r.params }

// Reset returns the reservoir to the vacuum state.
func (r *Reservoir) Reset() {
	dim := r.space.Total()
	r.rho = qmath.NewMatrix(dim, dim)
	r.rho.Set(0, 0, 1)
}

// Feed injects one input sample: the reservoir evolves for StepTime under
// the driven dissipative dynamics with drive amplitude proportional to u.
func (r *Reservoir) Feed(u float64) error {
	_, err := r.feedMultiplexed(u, 1)
	return err
}

// feedMultiplexed evolves one input sample in v equal chunks, returning
// the feature snapshot after each chunk (the "virtual nodes"). The RK4
// substep count per chunk is raised when the Hamiltonian norm demands it
// (dt ||H|| <= 0.5), so larger truncations stay numerically stable.
func (r *Reservoir) feedMultiplexed(u float64, v int) ([][]float64, error) {
	h := r.h0.Clone()
	h.AddScaledInPlace(complex(u, 0), r.drive)
	l, err := noise.NewSparseLindblad(h, r.collapse)
	if err != nil {
		return nil, err
	}
	chunk := r.params.StepTime / float64(v)
	sub := r.substeps / v
	if sub < 2 {
		sub = 2
	}
	// RK4 on the imaginary axis is stable to |lambda| dt ~ 2.8; dt ||H||
	// <= 1 keeps a comfortable margin while bounding cost.
	if need := int(math.Ceil(chunk * qmath.OnesNorm(h))); need > sub {
		sub = need
	}
	snaps := make([][]float64, 0, v)
	for k := 0; k < v; k++ {
		out, err := l.Evolve(chunk, sub, r.rho)
		if err != nil {
			return nil, err
		}
		r.rho = out
		snaps = append(snaps, r.snapshot())
	}
	// Trace drift is the cheap, reliable instability detector.
	if tr := real(r.rho.Trace()); math.IsNaN(tr) || math.Abs(tr-1) > 0.01 {
		return nil, fmt.Errorf("%w: integrator unstable (trace %v); increase Substeps", ErrBadReservoir, tr)
	}
	return snaps, nil
}

// snapshot returns one feature snapshot: the joint Fock populations plus,
// when enabled, the quadrature taps <x>, <p>, <n> of every mode.
func (r *Reservoir) snapshot() []float64 {
	out := r.Features()
	for m := range r.xOps {
		out = append(out,
			realTrace(r.rho, r.xOps[m]),
			realTrace(r.rho, r.pOps[m]),
			realTrace(r.rho, r.nOps[m]))
	}
	return out
}

// realTrace returns Re Tr(rho * op).
func realTrace(rho, op *qmath.Matrix) float64 {
	var acc complex128
	n := rho.Rows
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			x := op.At(k, i)
			if x != 0 {
				acc += rho.At(i, k) * x
			}
		}
	}
	return real(acc)
}

// PopulationLen returns the number of joint Fock populations per
// snapshot (Dim^Modes).
func (r *Reservoir) PopulationLen() int { return r.space.Total() }

// SnapshotLen returns the length of one feature snapshot.
func (r *Reservoir) SnapshotLen() int {
	n := r.space.Total()
	if r.params.QuadratureTaps {
		n += 3 * r.params.Modes
	}
	return n
}

// VirtualNodes returns the time-multiplexing factor.
func (r *Reservoir) VirtualNodes() int { return r.virtual }

// IncludesInput reports whether Run appends the raw input per sample.
func (r *Reservoir) IncludesInput() bool { return r.params.IncludeInput }

// Features returns the current joint Fock populations P(n_0,...,n_k) —
// the reservoir's "neurons" (81 of them for two 9-level modes).
func (r *Reservoir) Features() []float64 {
	dim := r.space.Total()
	out := make([]float64, dim)
	for i := 0; i < dim; i++ {
		p := real(r.rho.At(i, i))
		if p < 0 {
			p = 0
		}
		out[i] = p
	}
	return out
}

// MeanPhotons returns <n_m> for each mode.
func (r *Reservoir) MeanPhotons() []float64 {
	out := make([]float64, r.params.Modes)
	feats := r.Features()
	digits := make([]int, r.params.Modes)
	for i, p := range feats {
		r.space.DigitsInto(i, digits)
		for m, n := range digits {
			out[m] += p * float64(n)
		}
	}
	return out
}

// Run resets the reservoir, feeds the input sequence, and returns the
// feature vector after each sample: VirtualNodes concatenated snapshots
// (populations plus optional quadrature taps), plus the raw input when
// IncludeInput is set.
func (r *Reservoir) Run(inputs []float64) ([][]float64, error) {
	r.Reset()
	out := make([][]float64, 0, len(inputs))
	for i, u := range inputs {
		snaps, err := r.feedMultiplexed(u, r.virtual)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		row := make([]float64, 0, r.virtual*r.SnapshotLen()+1)
		for _, s := range snaps {
			row = append(row, s...)
		}
		if r.params.IncludeInput {
			row = append(row, u)
		}
		out = append(out, row)
	}
	return out, nil
}

// TopOccupation returns the population of the highest Fock level summed
// over modes — a truncation-health diagnostic: values near zero certify
// the truncation.
func (r *Reservoir) TopOccupation() float64 {
	feats := r.Features()
	digits := make([]int, r.params.Modes)
	var acc float64
	for i, p := range feats {
		r.space.DigitsInto(i, digits)
		for _, n := range digits {
			if n == r.params.Dim-1 {
				acc += p
				break
			}
		}
	}
	return acc
}
