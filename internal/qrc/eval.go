package qrc

import (
	"fmt"
	"math"
	"math/rand"

	"quditkit/internal/fit"
)

// FeatureProvider is anything that maps an input sequence to per-sample
// feature vectors: the quantum reservoir, the classical ESN, or the
// finite-shot wrapper.
type FeatureProvider interface {
	Run(inputs []float64) ([][]float64, error)
}

// TaskResult reports a train/test evaluation.
type TaskResult struct {
	TrainNMSE float64
	TestNMSE  float64
	Features  int
}

// EvaluateTask runs the provider on the inputs, discards a washout
// prefix, fits a ridge readout on the first trainFrac of the remainder,
// and scores NMSE on both splits. A constant bias feature is appended
// automatically.
func EvaluateTask(provider FeatureProvider, inputs, targets []float64, washout int, trainFrac, ridgeLambda float64) (*TaskResult, error) {
	if len(inputs) != len(targets) {
		return nil, fmt.Errorf("qrc: %d inputs vs %d targets", len(inputs), len(targets))
	}
	if washout < 0 || washout >= len(inputs)-4 {
		return nil, fmt.Errorf("qrc: washout %d leaves no data", washout)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("qrc: train fraction %v", trainFrac)
	}
	feats, err := provider.Run(inputs)
	if err != nil {
		return nil, err
	}
	x := make([][]float64, 0, len(inputs)-washout)
	y := make([]float64, 0, len(inputs)-washout)
	for t := washout; t < len(inputs); t++ {
		row := make([]float64, 0, len(feats[t])+1)
		row = append(row, feats[t]...)
		row = append(row, 1) // bias
		x = append(x, row)
		y = append(y, targets[t])
	}
	split := int(trainFrac * float64(len(x)))
	if split < 2 || len(x)-split < 2 {
		return nil, fmt.Errorf("qrc: split %d of %d leaves empty side", split, len(x))
	}
	w, err := fit.Ridge(x[:split], y[:split], ridgeLambda)
	if err != nil {
		return nil, fmt.Errorf("readout: %w", err)
	}
	trainPred := fit.Predict(x[:split], w)
	testPred := fit.Predict(x[split:], w)
	trainNMSE, err := fit.NMSE(trainPred, y[:split])
	if err != nil {
		return nil, err
	}
	testNMSE, err := fit.NMSE(testPred, y[split:])
	if err != nil {
		return nil, err
	}
	return &TaskResult{TrainNMSE: trainNMSE, TestNMSE: testNMSE, Features: len(x[0])}, nil
}

// ShotSampledProvider wraps a quantum reservoir and replaces its exact
// Fock-population features with empirical frequencies estimated from a
// finite number of measurement shots — the sampling overhead the paper
// flags as the main challenge for real-time reservoir operation.
type ShotSampledProvider struct {
	Reservoir *Reservoir
	Shots     int
	Rng       *rand.Rand
}

// Run produces shot-sampled features: within each snapshot, the joint
// Fock distribution is replaced by empirical frequencies from Shots
// multinomial draws, and each quadrature tap gets Gaussian estimation
// noise of scale 1/sqrt(Shots); the classically known raw-input entry is
// left exact.
func (s *ShotSampledProvider) Run(inputs []float64) ([][]float64, error) {
	if s.Shots < 1 {
		return nil, fmt.Errorf("qrc: shots=%d", s.Shots)
	}
	exact, err := s.Reservoir.Run(inputs)
	if err != nil {
		return nil, err
	}
	popLen := s.Reservoir.PopulationLen()
	snapLen := s.Reservoir.SnapshotLen()
	v := s.Reservoir.VirtualNodes()
	sigma := 1 / math.Sqrt(float64(s.Shots))
	out := make([][]float64, len(exact))
	for t, row := range exact {
		noisy := append([]float64(nil), row...)
		for k := 0; k < v; k++ {
			base := k * snapLen
			s.samplePopulations(noisy[base : base+popLen])
			for q := base + popLen; q < base+snapLen; q++ {
				noisy[q] += sigma * s.Rng.NormFloat64()
			}
		}
		out[t] = noisy
	}
	return out, nil
}

// samplePopulations replaces a probability block with multinomial
// empirical frequencies in place.
func (s *ShotSampledProvider) samplePopulations(probs []float64) {
	var total float64
	for _, p := range probs {
		if p > 0 {
			total += p
		}
	}
	if total <= 0 {
		return
	}
	cdf := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		if p > 0 {
			acc += p / total
		}
		cdf[i] = acc
	}
	counts := make([]float64, len(probs))
	for shot := 0; shot < s.Shots; shot++ {
		r := s.Rng.Float64()
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[lo]++
	}
	for i := range probs {
		probs[i] = counts[i] / float64(s.Shots)
	}
}

var (
	_ FeatureProvider = (*Reservoir)(nil)
	_ FeatureProvider = (*ESN)(nil)
	_ FeatureProvider = (*ShotSampledProvider)(nil)
)
