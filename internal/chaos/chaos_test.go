package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the Fleet test's target process: when
// CHAOS_HELPER_HTTP names a listen address, the test binary serves a
// trivial readiness endpoint there instead of running tests, exiting
// cleanly on SIGTERM. This is how the Fleet harness is exercised
// without building an external binary.
func TestMain(m *testing.M) {
	if addr := os.Getenv("CHAOS_HELPER_HTTP"); addr != "" {
		helperMain(addr)
		return
	}
	os.Exit(m.Run())
}

// helperMain is the re-exec'd process body: a one-route HTTP server
// that exits 0 on SIGTERM (so Stop observes a graceful shutdown).
func helperMain(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	srv.Close()
}

func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Drop: 0.1, Reset: 0.1, Delay: 0.2, P5xx: 0.1, P429: 0.1, MaxDelay: 80 * time.Millisecond}
	a, b := NewTransport(cfg), NewTransport(cfg)
	seen := make(map[Fault]int)
	for i := uint64(0); i < 4096; i++ {
		fa, da := a.FaultAt(i)
		fb, db := b.FaultAt(i)
		if fa != fb || da != db {
			t.Fatalf("schedule diverged at %d: %v/%v vs %v/%v", i, fa, da, fb, db)
		}
		if fa == FaultDelay {
			if da <= 0 || da > cfg.MaxDelay {
				t.Fatalf("delay at %d out of (0, MaxDelay]: %v", i, da)
			}
		}
		seen[fa]++
	}
	// Every class must actually occur, and the empirical rates must be
	// in the right ballpark (these are fixed numbers for a fixed seed,
	// not a statistical test).
	for _, f := range []Fault{FaultNone, FaultDrop, FaultReset, FaultDelay, Fault5xx, Fault429} {
		if seen[f] == 0 {
			t.Fatalf("fault class %v never drawn in 4096 indices", f)
		}
	}
	if none := seen[FaultNone]; none < 4096*3/10 || none > 4096*6/10 {
		t.Fatalf("FaultNone rate implausible: %d/4096", none)
	}
}

func TestFaultScheduleVariesWithSeed(t *testing.T) {
	a := NewTransport(Config{Seed: 1, Drop: 0.5})
	b := NewTransport(Config{Seed: 2, Drop: 0.5})
	same := 0
	for i := uint64(0); i < 256; i++ {
		fa, _ := a.FaultAt(i)
		fb, _ := b.FaultAt(i)
		if fa == fb {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestNewTransportRejectsBadProbabilities(t *testing.T) {
	for _, cfg := range []Config{
		{Drop: 0.6, Reset: 0.6},
		{Delay: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTransport(%+v) did not panic", cfg)
				}
			}()
			NewTransport(cfg)
		}()
	}
}

// faultFor scans the schedule for the first index drawing the wanted
// class, so behavior tests can aim one request at one fault exactly.
func faultFor(t *testing.T, tr *Transport, want Fault) uint64 {
	t.Helper()
	for i := uint64(0); i < 1<<16; i++ {
		if f, _ := tr.FaultAt(i); f == want {
			return i
		}
	}
	t.Fatalf("no %v in the first 65536 indices", want)
	return 0
}

func TestTransportFaultBehavior(t *testing.T) {
	var served atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprintln(w, "real")
	}))
	defer ts.Close()

	cfg := Config{Seed: 7, Drop: 0.2, Reset: 0.2, Delay: 0.2, P5xx: 0.2, P429: 0.2, MaxDelay: 5 * time.Millisecond}
	tr := NewTransport(cfg)
	client := &http.Client{Transport: tr}

	// Walk the schedule one request at a time; the index counter and
	// the loop index stay in lockstep because requests are sequential.
	wantAll := map[Fault]bool{FaultDrop: false, FaultReset: false, Fault5xx: false, Fault429: false, FaultDelay: false}
	for i := uint64(0); i < 64; i++ {
		fault, _ := tr.FaultAt(i)
		before := served.Load()
		resp, err := client.Get(ts.URL)
		switch fault {
		case FaultDrop:
			if err == nil || !IsInjected(err) {
				t.Fatalf("index %d: drop produced err=%v", i, err)
			}
			if served.Load() != before {
				t.Fatalf("index %d: dropped request reached the server", i)
			}
		case FaultReset:
			if err == nil || !IsInjected(err) {
				t.Fatalf("index %d: reset produced err=%v", i, err)
			}
			if served.Load() != before+1 {
				t.Fatalf("index %d: reset request did not reach the server", i)
			}
		case Fault5xx:
			if err != nil || resp.StatusCode != http.StatusBadGateway {
				t.Fatalf("index %d: want synthetic 502, got %v/%v", i, resp, err)
			}
			if served.Load() != before {
				t.Fatalf("index %d: synthetic 502 touched the network", i)
			}
			resp.Body.Close()
		case Fault429:
			if err != nil || resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("index %d: want synthetic 429, got %v/%v", i, resp, err)
			}
			resp.Body.Close()
		default: // FaultNone, FaultDelay: the real response comes back
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("index %d (%v): want 200, got %v/%v", i, fault, resp, err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(b), "real") {
				t.Fatalf("index %d: body %q not from the real server", i, b)
			}
		}
		if _, ok := wantAll[fault]; ok {
			wantAll[fault] = true
		}
	}
	for f, hit := range wantAll {
		if !hit {
			t.Errorf("fault %v never exercised in 64 requests (schedule too sparse for this seed)", f)
		}
	}
	st := tr.Stats()
	if st.Requests != 64 {
		t.Fatalf("Stats.Requests = %d, want 64", st.Requests)
	}
	if st.Drops+st.Resets+st.Delays+st.Injected5xx+st.Injected429 == 0 {
		t.Fatal("no injections counted")
	}
}

func TestTransportMatchSkipsSchedule(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	defer ts.Close()
	tr := NewTransport(Config{Seed: 3, Drop: 1.0, Match: func(r *http.Request) bool {
		return r.Method == http.MethodPost
	}})
	client := &http.Client{Transport: tr}
	// GETs are unmatched: they must pass through and consume no index.
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatalf("unmatched GET dropped: %v", err)
		}
		resp.Body.Close()
	}
	if st := tr.Stats(); st.Requests != 0 {
		t.Fatalf("unmatched traffic consumed %d schedule indices", st.Requests)
	}
	// A POST is matched and (Drop=1) always dropped.
	if _, err := client.Post(ts.URL, "text/plain", strings.NewReader("x")); !IsInjected(err) {
		t.Fatalf("matched POST not dropped: %v", err)
	}
}

func TestTransportDelayHonorsContext(t *testing.T) {
	tr := NewTransport(Config{Seed: 5, Delay: 1.0, MaxDelay: 10 * time.Second})
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://127.0.0.1:1/never", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored cancellation; blocked %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Logf("error chain: %v (http wraps the context error)", err)
	}
}

// freeAddr reserves a 127.0.0.1 port and releases it for a child
// process to bind. Racy in principle, fine in practice for tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestFleetLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	addr := freeAddr(t)
	f := NewFleet(os.Args[0])
	f.Env = []string{"CHAOS_HELPER_HTTP=" + addr}
	f.Dir = t.TempDir()
	defer f.Close()

	if err := f.Start("h1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Start("h1"); err == nil {
		t.Fatal("duplicate Start accepted")
	}
	url := "http://" + addr + "/healthz"
	if err := WaitReady(url, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if !f.Running("h1") {
		t.Fatal("h1 not reported running")
	}
	logPath := f.LogPath("h1")
	if logPath == "" {
		t.Fatal("no log path for h1")
	}

	// Graceful stop: the helper exits 0 on SIGTERM.
	if err := f.Stop("h1", 5*time.Second); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if f.Running("h1") {
		t.Fatal("h1 still running after Stop")
	}

	// Restart under the same name, then crash it.
	if err := f.Start("h1"); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	if err := WaitReady(url, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Kill("h1"); err != nil {
		t.Fatal(err)
	}
	if f.Running("h1") {
		t.Fatal("h1 still running after Kill")
	}
	if err := f.Kill("h1"); err == nil {
		t.Fatal("Kill of a dead name succeeded")
	}
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("log file gone: %v", err)
	}
}

func TestWaitReadyTimesOut(t *testing.T) {
	start := time.Now()
	err := WaitReady("http://127.0.0.1:1/healthz", 200*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("WaitReady overstayed its timeout")
	}
}
