package chaos

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// Fleet scripts real daemon processes for chaos scenarios: start a
// coordinator and workers, SIGKILL one mid-sweep, restart it, join a
// fresh worker — against the actual binary, not an in-process
// stand-in. Each process's combined stdout/stderr is captured to a log
// file under Dir for post-mortems. A Fleet is safe for concurrent use;
// Close kills everything still running.
type Fleet struct {
	// Binary is the executable every Start launches (required).
	Binary string
	// Env is appended to os.Environ() for every process.
	Env []string
	// Dir receives per-process log files; empty selects os.TempDir().
	Dir string

	mu    sync.Mutex
	procs map[string]*proc
	seq   int
}

// proc is one managed process.
type proc struct {
	cmd  *exec.Cmd
	log  string
	wait chan error // closed result of cmd.Wait
}

// NewFleet builds a harness that launches binary.
func NewFleet(binary string) *Fleet {
	return &Fleet{Binary: binary, procs: make(map[string]*proc)}
}

// Start launches one process under the given name with the given
// arguments. The name must not collide with a process still running;
// after Kill or Stop the name is free again (that's how a coordinator
// restart is scripted: Kill then Start with the same name).
func (f *Fleet) Start(name string, args ...string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.procs == nil {
		f.procs = make(map[string]*proc)
	}
	if _, ok := f.procs[name]; ok {
		return fmt.Errorf("chaos: process %q already running", name)
	}
	dir := f.Dir
	if dir == "" {
		dir = os.TempDir()
	}
	f.seq++
	logPath := filepath.Join(dir, fmt.Sprintf("%s.%d.log", name, f.seq))
	logFile, err := os.Create(logPath)
	if err != nil {
		return fmt.Errorf("chaos: creating log for %q: %w", name, err)
	}
	cmd := exec.Command(f.Binary, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	cmd.Env = append(os.Environ(), f.Env...)
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("chaos: starting %q: %w", name, err)
	}
	p := &proc{cmd: cmd, log: logPath, wait: make(chan error, 1)}
	go func() {
		p.wait <- cmd.Wait()
		close(p.wait)
		logFile.Close()
	}()
	f.procs[name] = p
	return nil
}

// lookup fetches a managed process by name.
func (f *Fleet) lookup(name string) (*proc, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p := f.procs[name]
	if p == nil {
		return nil, fmt.Errorf("chaos: no process %q", name)
	}
	return p, nil
}

// forget drops a process entry so its name is reusable.
func (f *Fleet) forget(name string) {
	f.mu.Lock()
	delete(f.procs, name)
	f.mu.Unlock()
}

// Kill SIGKILLs a process — the crash scenario: no drain, no shutdown
// hooks, the process just stops — and waits for the OS to reap it. The
// name becomes reusable for a restart.
func (f *Fleet) Kill(name string) error {
	p, err := f.lookup(name)
	if err != nil {
		return err
	}
	if err := p.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("chaos: killing %q: %w", name, err)
	}
	<-p.wait
	f.forget(name)
	return nil
}

// Stop sends SIGTERM — the graceful-shutdown path — and waits up to
// timeout for the process to exit, escalating to SIGKILL on expiry. It
// returns the process's exit error (nil for a clean exit 0).
func (f *Fleet) Stop(name string, timeout time.Duration) error {
	p, err := f.lookup(name)
	if err != nil {
		return err
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("chaos: signalling %q: %w", name, err)
	}
	select {
	case werr := <-p.wait:
		f.forget(name)
		return werr
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.wait
		f.forget(name)
		return fmt.Errorf("chaos: %q ignored SIGTERM for %v; killed", name, timeout)
	}
}

// Running reports whether a process with this name is currently
// managed and has not exited.
func (f *Fleet) Running(name string) bool {
	p, err := f.lookup(name)
	if err != nil {
		return false
	}
	select {
	case <-p.wait:
		return false
	default:
		return true
	}
}

// LogPath returns the capture file of a process's combined output, or
// "" for an unknown name. The file outlives Kill/Stop for post-mortem
// reads, but the entry is forgotten with the process — call before
// killing.
func (f *Fleet) LogPath(name string) string {
	p, err := f.lookup(name)
	if err != nil {
		return ""
	}
	return p.log
}

// Close SIGKILLs every process still managed. Safe to call more than
// once; meant for test cleanup.
func (f *Fleet) Close() {
	f.mu.Lock()
	procs := f.procs
	f.procs = make(map[string]*proc)
	f.mu.Unlock()
	for _, p := range procs {
		p.cmd.Process.Kill()
		<-p.wait
	}
}

// WaitReady polls url with GET until it answers 200, the readiness
// criterion for a just-started daemon, giving up when timeout elapses.
func WaitReady(url string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("chaos: %s not ready after %v", url, timeout)
		case <-time.After(25 * time.Millisecond):
		}
	}
}
