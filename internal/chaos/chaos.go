// Package chaos is quditkit's deterministic fault-injection layer: the
// adversarial half of the dependability story the fleet tests lean on.
// It offers two seams, one per layer of the stack:
//
//   - Transport, an http.RoundTripper wrapper that injects connection
//     drops, response resets, latency, and synthetic 5xx/429 responses
//     on a splitmix64-derived schedule keyed by (seed, request index).
//     Plug it into cluster.CoordinatorConfig.Client (its timeout-free
//     streamer copy shares the transport) or cluster.AgentConfig.Client
//     and every control round-trip rolls against the schedule.
//
//   - Fleet, a process-level harness that starts, SIGKILLs, gracefully
//     stops, and restarts real daemon processes (quditd in this repo),
//     so tests can script "kill -9 the coordinator mid-sweep" against
//     the real binary rather than an in-process stand-in.
//
// Determinism contract: the fault schedule — which request index draws
// which fault, and how long an injected delay lasts — is a pure
// function of (Config.Seed, index). Two transports with the same config
// inject the identical fault sequence. What varies across runs is only
// which logical request lands on which index when callers race; tests
// that want full reproducibility issue requests sequentially.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Fault is one class of injected failure.
type Fault int

// The fault classes a Transport can inject. FaultNone passes the
// request through untouched.
const (
	// FaultNone lets the request through untouched.
	FaultNone Fault = iota
	// FaultDrop fails the request before it reaches the network — the
	// server never sees it — returning a synthetic connection error.
	FaultDrop
	// FaultReset performs the real round-trip, then discards the
	// response and returns a synthetic connection-reset error: the
	// server observed (and acted on) the request, but the client can't
	// know. This is the fault that flushes out missing idempotency.
	FaultReset
	// FaultDelay holds the request for a schedule-derived duration
	// (up to Config.MaxDelay), then lets it through.
	FaultDelay
	// Fault5xx returns a synthetic 502 without touching the network.
	Fault5xx
	// Fault429 returns a synthetic 429 without touching the network.
	Fault429
)

// String names the fault class for logs and test output.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultReset:
		return "reset"
	case FaultDelay:
		return "delay"
	case Fault5xx:
		return "5xx"
	case Fault429:
		return "429"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config parameterizes a Transport. Each probability is the fraction of
// matched requests drawn into that fault class; their sum must not
// exceed 1 (NewTransport panics otherwise, since a silently clamped
// schedule would not be the one the test asked for).
type Config struct {
	// Seed keys the splitmix64 fault schedule. Two transports with the
	// same Config inject the identical fault sequence.
	Seed uint64
	// Drop is the probability a matched request is dropped before the
	// network (synthetic connection error; the server never sees it).
	Drop float64
	// Reset is the probability the round-trip happens but its response
	// is replaced with a synthetic connection-reset error.
	Reset float64
	// Delay is the probability a matched request is held for a
	// schedule-derived duration before proceeding.
	Delay float64
	// P5xx is the probability a synthetic 502 is returned without
	// touching the network.
	P5xx float64
	// P429 is the probability a synthetic 429 is returned without
	// touching the network.
	P429 float64
	// MaxDelay bounds an injected delay; the schedule draws a duration
	// in (0, MaxDelay]. Default 100ms.
	MaxDelay time.Duration
	// Match filters which requests roll against the schedule; nil
	// matches every request. Unmatched requests pass through without
	// consuming a schedule index, so the schedule is stable no matter
	// how much unmatched traffic interleaves.
	Match func(*http.Request) bool
	// Base is the wrapped transport; nil selects
	// http.DefaultTransport.
	Base http.RoundTripper
}

// Stats counts what a Transport has done so far, by fault class.
type Stats struct {
	// Requests is the number of matched requests scheduled so far.
	Requests uint64
	// Drops counts FaultDrop injections.
	Drops uint64
	// Resets counts FaultReset injections.
	Resets uint64
	// Delays counts FaultDelay injections.
	Delays uint64
	// Injected5xx counts Fault5xx injections.
	Injected5xx uint64
	// Injected429 counts Fault429 injections.
	Injected429 uint64
}

// Transport injects faults into HTTP round-trips on a deterministic,
// seeded schedule. Build it with NewTransport; it is safe for
// concurrent use.
type Transport struct {
	cfg Config

	idx    atomic.Uint64
	drops  atomic.Uint64
	resets atomic.Uint64
	delays atomic.Uint64
	n5xx   atomic.Uint64
	n429   atomic.Uint64
}

// NewTransport builds a fault-injecting RoundTripper from cfg. It
// panics when the fault probabilities sum past 1 or any is negative —
// a malformed schedule is a test bug, not a runtime condition.
func NewTransport(cfg Config) *Transport {
	sum := 0.0
	for _, p := range []float64{cfg.Drop, cfg.Reset, cfg.Delay, cfg.P5xx, cfg.P429} {
		if p < 0 {
			panic("chaos: negative fault probability")
		}
		sum += p
	}
	if sum > 1 {
		panic("chaos: fault probabilities sum past 1")
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 100 * time.Millisecond
	}
	if cfg.Base == nil {
		cfg.Base = http.DefaultTransport
	}
	return &Transport{cfg: cfg}
}

// splitmix64 is the splitmix64 finalizer: a cheap, well-mixed bijection
// on 64-bit words (same construction the cluster ring uses).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unit maps a 64-bit word onto [0, 1) with 53 bits of precision.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// FaultAt reports the schedule's decision for matched-request index
// idx: the fault class and, for FaultDelay, the injected duration. It
// is a pure function of (Config.Seed, idx), so tests can precompute
// the exact fault sequence a run will see.
func (t *Transport) FaultAt(idx uint64) (Fault, time.Duration) {
	u := unit(splitmix64(t.cfg.Seed ^ splitmix64(idx+1)))
	c := t.cfg
	switch {
	case u < c.Drop:
		return FaultDrop, 0
	case u < c.Drop+c.Reset:
		return FaultReset, 0
	case u < c.Drop+c.Reset+c.Delay:
		frac := unit(splitmix64(t.cfg.Seed ^ splitmix64(idx+1) ^ 0xD1B54A32D192ED03))
		d := time.Duration(frac * float64(c.MaxDelay))
		if d <= 0 {
			d = time.Millisecond
		}
		return FaultDelay, d
	case u < c.Drop+c.Reset+c.Delay+c.P5xx:
		return Fault5xx, 0
	case u < c.Drop+c.Reset+c.Delay+c.P5xx+c.P429:
		return Fault429, 0
	}
	return FaultNone, 0
}

// Stats snapshots the injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.idx.Load(),
		Drops:       t.drops.Load(),
		Resets:      t.resets.Load(),
		Delays:      t.delays.Load(),
		Injected5xx: t.n5xx.Load(),
		Injected429: t.n429.Load(),
	}
}

// errInjected marks transport errors synthesized by chaos injection so
// test logs read unambiguously.
type errInjected struct {
	fault Fault
	url   string
}

func (e errInjected) Error() string {
	return fmt.Sprintf("chaos: injected %s (%s)", e.fault, e.url)
}

// IsInjected reports whether err (or anything it wraps) was synthesized
// by a chaos Transport, so tests can tell injected faults from real
// transport failures.
func IsInjected(err error) bool {
	var e errInjected
	return errors.As(err, &e)
}

// RoundTrip implements http.RoundTripper: matched requests roll against
// the fault schedule at the next index; unmatched requests pass through
// to the base transport untouched.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.cfg.Match != nil && !t.cfg.Match(req) {
		return t.cfg.Base.RoundTrip(req)
	}
	idx := t.idx.Add(1) - 1
	fault, delay := t.FaultAt(idx)
	switch fault {
	case FaultDrop:
		t.drops.Add(1)
		return nil, errInjected{FaultDrop, req.URL.String()}
	case FaultReset:
		resp, err := t.cfg.Base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		t.resets.Add(1)
		return nil, errInjected{FaultReset, req.URL.String()}
	case FaultDelay:
		t.delays.Add(1)
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.cfg.Base.RoundTrip(req)
	case Fault5xx:
		t.n5xx.Add(1)
		return synthetic(req, http.StatusBadGateway), nil
	case Fault429:
		t.n429.Add(1)
		return synthetic(req, http.StatusTooManyRequests), nil
	}
	return t.cfg.Base.RoundTrip(req)
}

// synthetic builds an in-memory response carrying an injected status,
// shaped like the JSON errors quditd itself emits.
func synthetic(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("{\"error\":\"chaos: injected %d\"}", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
