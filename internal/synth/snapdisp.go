package synth

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

// SNAPDisplacementOptions configures the numerical block-compilation of a
// single-mode unitary into displacement and SNAP pulses.
type SNAPDisplacementOptions struct {
	// Blocks is the number of SNAP blocks B; the ansatz is
	// D(aB) SNAP(pB) ... D(a1) SNAP(p1) D(a0), so there are B+1
	// displacements. Zero selects the default d+1.
	Blocks int
	// WorkDim is the Fock truncation used during synthesis; it must be at
	// least the target dimension. Zero selects d+4, giving the optimizer
	// headroom above the computational subspace, as hardware pulses have.
	WorkDim int
	// MaxSweeps bounds the coordinate-descent sweeps per restart.
	// Zero selects 40.
	MaxSweeps int
	// Restarts is the number of random initializations tried. Zero
	// selects 3.
	Restarts int
	// TargetInfidelity stops the search early once 1-F drops below it.
	// Zero selects 1e-4.
	TargetInfidelity float64
}

func (o SNAPDisplacementOptions) withDefaults(d int) SNAPDisplacementOptions {
	if o.Blocks == 0 {
		o.Blocks = d + 1
	}
	if o.WorkDim == 0 {
		o.WorkDim = d + 4
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 40
	}
	if o.Restarts == 0 {
		o.Restarts = 3
	}
	if o.TargetInfidelity == 0 {
		o.TargetInfidelity = 1e-4
	}
	return o
}

// SNAPDisplacementResult reports a compiled pulse sequence and its
// quality.
type SNAPDisplacementResult struct {
	Dim         int
	WorkDim     int
	Blocks      int
	Alphas      []float64   // B+1 real displacement amplitudes
	Phases      [][]float64 // B phase vectors of length WorkDim
	Fidelity    float64     // subspace process fidelity on the d levels
	Evaluations int
}

// Sequence materializes the compiled pulse list as gates on the working
// dimension, in application order.
func (r *SNAPDisplacementResult) Sequence() []gates.Gate {
	out := make([]gates.Gate, 0, 2*r.Blocks+1)
	out = append(out, gates.Displacement(r.WorkDim, complex(r.Alphas[0], 0)))
	for b := 0; b < r.Blocks; b++ {
		out = append(out, gates.SNAP(r.Phases[b]))
		out = append(out, gates.Displacement(r.WorkDim, complex(r.Alphas[b+1], 0)))
	}
	return out
}

// SynthesizeSNAPDisplacement numerically compiles a d x d target unitary
// on the lowest d Fock levels of a cavity into an alternating sequence of
// real displacements and SNAP gates, the native control set of the
// dispersive cavity-transmon module. The optimizer is a restarted
// adaptive coordinate descent on the subspace process infidelity
//
//	1 - |Tr(P V† (U ⊕ I) P)|^2 / d^2,
//
// where V is the ansatz on the enlarged working space and P projects onto
// the computational levels. Leakage out of the subspace suppresses the
// block trace and is therefore penalized automatically.
func SynthesizeSNAPDisplacement(rng *rand.Rand, u *qmath.Matrix, opts SNAPDisplacementOptions) (*SNAPDisplacementResult, error) {
	if u.Rows != u.Cols {
		return nil, fmt.Errorf("synth: target must be square, got %dx%d", u.Rows, u.Cols)
	}
	d := u.Rows
	if !u.IsUnitary(1e-8) {
		return nil, fmt.Errorf("synth: target is not unitary")
	}
	opts = opts.withDefaults(d)
	if opts.WorkDim < d {
		return nil, fmt.Errorf("synth: work dim %d below target dim %d", opts.WorkDim, d)
	}

	ev := &sdEvaluator{target: u, d: d, work: opts.WorkDim, blocks: opts.Blocks}

	bestCost := math.Inf(1)
	var bestParams []float64
	for restart := 0; restart < opts.Restarts; restart++ {
		params := ev.randomInit(rng)
		cost := ev.cost(params)
		step := 0.4
		for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
			improved := false
			for p := range params {
				c, ok := ev.lineStep(params, p, step, cost)
				if ok {
					cost = c
					improved = true
				}
			}
			if cost < opts.TargetInfidelity {
				break
			}
			if !improved {
				step *= 0.5
				if step < 1e-5 {
					break
				}
			}
		}
		if cost < bestCost {
			bestCost = cost
			bestParams = append([]float64(nil), params...)
		}
		if bestCost < opts.TargetInfidelity {
			break
		}
	}

	alphas, phases := ev.unpack(bestParams)
	return &SNAPDisplacementResult{
		Dim:         d,
		WorkDim:     opts.WorkDim,
		Blocks:      opts.Blocks,
		Alphas:      alphas,
		Phases:      phases,
		Fidelity:    1 - bestCost,
		Evaluations: ev.evals,
	}, nil
}

// sdEvaluator computes the infidelity of the SNAP-displacement ansatz.
type sdEvaluator struct {
	target *qmath.Matrix
	d      int
	work   int
	blocks int
	evals  int
}

// layout: params[0..blocks] = alphas, then blocks*work phases.
func (e *sdEvaluator) numParams() int { return e.blocks + 1 + e.blocks*e.work }

func (e *sdEvaluator) randomInit(rng *rand.Rand) []float64 {
	p := make([]float64, e.numParams())
	for b := 0; b <= e.blocks; b++ {
		p[b] = 0.5 * rng.NormFloat64()
	}
	for i := e.blocks + 1; i < len(p); i++ {
		p[i] = 2 * math.Pi * rng.Float64()
	}
	return p
}

func (e *sdEvaluator) unpack(p []float64) ([]float64, [][]float64) {
	alphas := append([]float64(nil), p[:e.blocks+1]...)
	phases := make([][]float64, e.blocks)
	off := e.blocks + 1
	for b := 0; b < e.blocks; b++ {
		phases[b] = append([]float64(nil), p[off:off+e.work]...)
		off += e.work
	}
	return alphas, phases
}

func (e *sdEvaluator) build(p []float64) *qmath.Matrix {
	alphas, phases := e.unpack(p)
	v := gates.Displacement(e.work, complex(alphas[0], 0)).Matrix
	for b := 0; b < e.blocks; b++ {
		v = gates.SNAP(phases[b]).Matrix.Mul(v)
		v = gates.Displacement(e.work, complex(alphas[b+1], 0)).Matrix.Mul(v)
	}
	return v
}

// cost returns the subspace process infidelity of the ansatz.
func (e *sdEvaluator) cost(p []float64) float64 {
	e.evals++
	v := e.build(p)
	// Tr over the computational block of V† (U ⊕ I):
	// sum_{i,j<d} conj(V[i][j]) U[i][j].
	var tr complex128
	for i := 0; i < e.d; i++ {
		for j := 0; j < e.d; j++ {
			tr += cmplx.Conj(v.At(i, j)) * e.target.At(i, j)
		}
	}
	f := (real(tr)*real(tr) + imag(tr)*imag(tr)) / float64(e.d*e.d)
	return 1 - f
}

// lineStep tries a parabolic/two-sided move of parameter p and keeps the
// best. It returns the new cost and whether it improved.
func (e *sdEvaluator) lineStep(params []float64, p int, step, cur float64) (float64, bool) {
	x0 := params[p]
	params[p] = x0 + step
	up := e.cost(params)
	params[p] = x0 - step
	down := e.cost(params)

	// Parabolic vertex through (x0-step, down), (x0, cur), (x0+step, up).
	den := up - 2*cur + down
	bestX, bestC := x0, cur
	if up < bestC {
		bestX, bestC = x0+step, up
	}
	if down < bestC {
		bestX, bestC = x0-step, down
	}
	if den > 1e-15 {
		vx := x0 + 0.5*step*(down-up)/den
		if math.Abs(vx-x0) < 3*step { // trust region
			params[p] = vx
			if c := e.cost(params); c < bestC {
				bestX, bestC = vx, c
			}
		}
	}
	params[p] = bestX
	if bestC < cur-1e-15 {
		return bestC, true
	}
	return cur, false
}
