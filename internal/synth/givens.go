// Package synth implements the gate-synthesis layer of quditkit: exact
// Givens (two-level) decompositions of qudit unitaries, numerical
// SNAP-displacement compilation for cavity modes, constructive CSUM
// compilation with duration and fidelity reports, and CNOT cost models
// for qubit-encoded circuits. This package addresses the paper's central
// "anticipated challenge": efficient synthesis of entangling operations
// on bosonic qudits.
package synth

import (
	"fmt"
	"math"
	"math/cmplx"

	"quditkit/internal/qmath"
)

// TwoLevelOp is a unitary supported on two basis levels (i, j) of a
// d-dimensional space, described by its 2x2 block.
type TwoLevelOp struct {
	I, J  int
	Block [2][2]complex128
}

// Embed returns the full d x d matrix of the two-level operation.
func (op TwoLevelOp) Embed(d int) *qmath.Matrix {
	m := qmath.Identity(d)
	m.Set(op.I, op.I, op.Block[0][0])
	m.Set(op.I, op.J, op.Block[0][1])
	m.Set(op.J, op.I, op.Block[1][0])
	m.Set(op.J, op.J, op.Block[1][1])
	return m
}

// Decomposition is the result of a two-level decomposition:
//
//	U = Ops[0]† Ops[1]† ... Ops[k-1]† diag(Phases)
//
// equivalently diag(Phases) = Ops[k-1] ... Ops[0] U. Executing U on
// hardware therefore means applying the daggered rotations in reverse
// order after the diagonal phase gate.
type Decomposition struct {
	Dim    int
	Ops    []TwoLevelOp
	Phases []complex128
}

// Reconstruct multiplies the decomposition back into a dense matrix, for
// verification: U = (prod of Ops)† D.
func (dec *Decomposition) Reconstruct() *qmath.Matrix {
	u := qmath.Diag(dec.Phases)
	// U = Ops[0]† ... Ops[k-1]† D: apply daggers right-to-left on D.
	for i := len(dec.Ops) - 1; i >= 0; i-- {
		u = dec.Ops[i].Embed(dec.Dim).Dagger().Mul(u)
	}
	return u
}

// CountOps returns the number of two-level rotations.
func (dec *Decomposition) CountOps() int { return len(dec.Ops) }

// GivensDecompose factors a unitary into two-level rotations acting on
// ADJACENT levels only — the physically preferred primitive for cavity
// qudits, where adjacent Fock levels are coupled by single-photon
// sideband processes — plus a final diagonal of phases. The rotation
// count is at most d(d-1)/2 ... for adjacent-only elimination the count is
// O(d^2) with each column c requiring up to d-1-c rotations.
func GivensDecompose(u *qmath.Matrix) (*Decomposition, error) {
	return decompose(u, true)
}

// TwoLevelDecompose factors a unitary into two-level rotations between
// arbitrary level pairs (c, r) — the classical textbook decomposition used
// for qubit (Gray-code) compilation cost estimates.
func TwoLevelDecompose(u *qmath.Matrix) (*Decomposition, error) {
	return decompose(u, false)
}

func decompose(u *qmath.Matrix, adjacent bool) (*Decomposition, error) {
	if u.Rows != u.Cols {
		return nil, fmt.Errorf("synth: decompose requires square matrix, got %dx%d", u.Rows, u.Cols)
	}
	d := u.Rows
	if !u.IsUnitary(1e-8) {
		return nil, fmt.Errorf("synth: decompose input is not unitary")
	}
	w := u.Clone()
	var ops []TwoLevelOp
	for c := 0; c < d-1; c++ {
		if adjacent {
			// Sweep from the bottom, each rotation mixing rows (r-1, r),
			// pushing weight upward until only w[c][c] remains.
			for r := d - 1; r > c; r-- {
				op, changed := eliminate(w, r-1, r, c)
				if changed {
					ops = append(ops, op)
				}
			}
		} else {
			// Eliminate each w[r][c] against the pivot row c directly.
			for r := c + 1; r < d; r++ {
				op, changed := eliminate(w, c, r, c)
				if changed {
					ops = append(ops, op)
				}
			}
		}
	}
	phases := w.Diagonal()
	// Sanity: w should now be diagonal with unimodular entries.
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			if i != j && cmplx.Abs(w.At(i, j)) > 1e-7 {
				return nil, fmt.Errorf("synth: elimination left residual %g at (%d,%d)",
					cmplx.Abs(w.At(i, j)), i, j)
			}
		}
	}
	return &Decomposition{Dim: d, Ops: ops, Phases: phases}, nil
}

// eliminate applies a rotation G on rows (i, j) of w chosen to zero
// w[j][col], records it, and reports whether a rotation was needed.
func eliminate(w *qmath.Matrix, i, j, col int) (TwoLevelOp, bool) {
	a := w.At(i, col)
	b := w.At(j, col)
	if cmplx.Abs(b) < 1e-12 {
		return TwoLevelOp{}, false
	}
	rho := math.Hypot(cmplx.Abs(a), cmplx.Abs(b))
	// G = 1/rho [[conj(a), conj(b)], [-b, a]] maps (a, b) -> (rho, 0).
	inv := complex(1/rho, 0)
	g := TwoLevelOp{
		I: i,
		J: j,
		Block: [2][2]complex128{
			{cmplx.Conj(a) * inv, cmplx.Conj(b) * inv},
			{-b * inv, a * inv},
		},
	}
	// Apply G to rows i, j of w.
	d := w.Cols
	for cIdx := 0; cIdx < d; cIdx++ {
		wi := w.At(i, cIdx)
		wj := w.At(j, cIdx)
		w.Set(i, cIdx, g.Block[0][0]*wi+g.Block[0][1]*wj)
		w.Set(j, cIdx, g.Block[1][0]*wi+g.Block[1][1]*wj)
	}
	w.Set(j, col, 0) // exact by construction; clear round-off
	return g, true
}
