package synth

import (
	"fmt"
	"math"
	"math/cmplx"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

// nativePhaseTol is the threshold below which a residual diagonal phase
// is considered identity and elided from a lowering.
const nativePhaseTol = 1e-12

// LowerSingleQudit factors an arbitrary single-qudit gate into the
// cavity-native primitive set: one SNAP diagonal followed by two-level
// rotations on ADJACENT levels (the daggered Givens eliminations of
// GivensDecompose, replayed in reverse order). The returned gates applied
// in slice order reproduce g.Matrix exactly up to floating-point round-off:
//
//	g = Ops[0]† ... Ops[k-1]† diag(phases)  (see Decomposition)
//
// so the emission order is diag first, then Ops[k-1]† down to Ops[0]†.
// Gates that are already native pass through unchanged; see NativeSingleQudit.
func LowerSingleQudit(g gates.Gate) ([]gates.Gate, error) {
	if g.Arity() != 1 {
		return nil, fmt.Errorf("synth: LowerSingleQudit wants arity 1, gate %s has %d", g.Name, g.Arity())
	}
	if NativeSingleQudit(g) {
		return []gates.Gate{g}, nil
	}
	dec, err := GivensDecompose(g.Matrix)
	if err != nil {
		return nil, fmt.Errorf("synth: lowering %s: %w", g.Name, err)
	}
	d := dec.Dim
	out := make([]gates.Gate, 0, len(dec.Ops)+1)
	angles := make([]float64, d)
	maxAngle := 0.0
	for i, p := range dec.Phases {
		angles[i] = math.Atan2(imag(p), real(p))
		if a := math.Abs(angles[i]); a > maxAngle {
			maxAngle = a
		}
	}
	if maxAngle > nativePhaseTol {
		out = append(out, gates.SNAP(angles))
	}
	for i := len(dec.Ops) - 1; i >= 0; i-- {
		op := dec.Ops[i]
		out = append(out, gates.Gate{
			Name: fmt.Sprintf("G2_%d[%d,%d]", d, op.I, op.J),
			Dims: []int{d},
			// The decomposition records eliminations; execution applies
			// their daggers.
			Matrix: op.Embed(d).Dagger(),
		})
	}
	return out, nil
}

// NativeSingleQudit reports whether a single-qudit gate is directly
// realizable on a cavity mode without synthesis: a diagonal unitary
// (SNAP class — number-selective phases) or a unitary supported on two
// adjacent Fock levels (single-photon sideband class). Nativeness is
// decided from the matrix structure, never the gate name, so custom
// gates classify correctly.
func NativeSingleQudit(g gates.Gate) bool {
	if g.Arity() != 1 || g.Matrix == nil {
		return false
	}
	m := g.Matrix
	d := m.Rows
	if isDiagonal(m) {
		return true
	}
	// Supported on adjacent levels (i, i+1): identity everywhere else.
	support := -1
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			v := m.At(i, j)
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(v-want) <= nativePhaseTol {
				continue
			}
			// Off-identity entry: must sit inside one adjacent 2x2 block.
			lo := i
			if j < lo {
				lo = j
			}
			hi := i
			if j > hi {
				hi = j
			}
			if hi-lo > 1 {
				return false
			}
			if support == -1 {
				support = lo
			}
			if lo < support || hi > support+1 {
				return false
			}
		}
	}
	return true
}

// NativeTwoQudit reports whether a two-qudit gate is directly realizable
// across a mode pair: any diagonal unitary (conditional-phase class,
// driven by the cross-Kerr interaction).
func NativeTwoQudit(g gates.Gate) bool {
	return g.Arity() == 2 && g.Matrix != nil && isDiagonal(g.Matrix)
}

func isDiagonal(m *qmath.Matrix) bool {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j && cmplx.Abs(m.At(i, j)) > nativePhaseTol {
				return false
			}
		}
	}
	return true
}
