package synth

import (
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

func TestGivensDecomposeCSUMStructure(t *testing.T) {
	// CSUM is a permutation: its two-level decomposition uses only
	// swap-like rotations, and the count stays well below the generic
	// d(d-1)/2 bound because of sparsity.
	d := 3
	u := gates.CSUM(d, d).Matrix
	dec, err := TwoLevelDecompose(u)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Reconstruct().ApproxEqual(u, 1e-8) {
		t.Fatal("CSUM reconstruction failed")
	}
	generic := (d * d) * (d*d - 1) / 2
	if dec.CountOps() >= generic/2 {
		t.Errorf("CSUM used %d rotations; expected sparse structure well under %d", dec.CountOps(), generic)
	}
}

func TestQubitCompileDiagonalCheap(t *testing.T) {
	// A diagonal unitary needs no two-level rotations, only phases.
	diag := qmath.Diag([]complex128{1, 1i, -1, -1i})
	rep, err := QubitCompileCost(diag)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TwoLevelOps != 0 {
		t.Errorf("diagonal compile used %d rotations", rep.TwoLevelOps)
	}
	if rep.CNOTs == 0 {
		t.Error("nontrivial phases should cost controlled-phase CNOTs")
	}
}

func TestSNAPDisplacementBlocksDefaulting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	target := gates.SNAP([]float64{0.2, -0.1, 0.4}).Matrix
	res, err := SynthesizeSNAPDisplacement(rng, target, SNAPDisplacementOptions{MaxSweeps: 5, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 4 { // d+1 default
		t.Errorf("default blocks = %d, want 4", res.Blocks)
	}
	if res.WorkDim != 7 { // d+4 default
		t.Errorf("default work dim = %d, want 7", res.WorkDim)
	}
	if len(res.Alphas) != res.Blocks+1 || len(res.Phases) != res.Blocks {
		t.Error("parameter shapes wrong")
	}
}

func TestDecompositionEmbedRoundTrip(t *testing.T) {
	op := TwoLevelOp{
		I: 0, J: 2,
		Block: [2][2]complex128{{0, 1}, {1, 0}},
	}
	m := op.Embed(4)
	if m.At(0, 2) != 1 || m.At(2, 0) != 1 || m.At(1, 1) != 1 || m.At(3, 3) != 1 {
		t.Errorf("embed wrong: %v", m)
	}
	if !m.IsUnitary(1e-12) {
		t.Error("embedded two-level op not unitary")
	}
}

func TestPlanCSUMRouteComparison(t *testing.T) {
	// At small d the exchange route beats cross-Kerr; at d=10 the order
	// flips — the crossover the experiment table exposes.
	module := forecastModuleForTest()
	small, err := PlanCSUM(module, 3, routeCrossKerr(), true)
	if err != nil {
		t.Fatal(err)
	}
	smallEx, err := PlanCSUM(module, 3, routeExchange(), true)
	if err != nil {
		t.Fatal(err)
	}
	if smallEx.DurationSec >= small.DurationSec {
		t.Errorf("exchange route should be faster at d=3: %v vs %v",
			smallEx.DurationSec, small.DurationSec)
	}
	big, err := PlanCSUM(module, 10, routeCrossKerr(), true)
	if err != nil {
		t.Fatal(err)
	}
	bigEx, err := PlanCSUM(module, 10, routeExchange(), true)
	if err != nil {
		t.Fatal(err)
	}
	if big.DurationSec >= bigEx.DurationSec {
		t.Errorf("cross-Kerr route should win at d=10: %v vs %v",
			big.DurationSec, bigEx.DurationSec)
	}
}
