package synth

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/cavity"
	"quditkit/internal/gates"
	"quditkit/internal/qmath"
)

func TestGivensDecomposeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, d := range []int{2, 3, 4, 6} {
		u := qmath.RandomUnitary(rng, d)
		dec, err := GivensDecompose(u)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		rec := dec.Reconstruct()
		if !rec.ApproxEqual(u, 1e-7) {
			t.Errorf("d=%d: reconstruction error %v", d, rec.Sub(u).FrobeniusNorm())
		}
		// Adjacent-level constraint.
		for _, op := range dec.Ops {
			if op.J-op.I != 1 {
				t.Errorf("d=%d: non-adjacent rotation (%d,%d)", d, op.I, op.J)
			}
		}
	}
}

func TestTwoLevelDecomposeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, d := range []int{2, 4, 8} {
		u := qmath.RandomUnitary(rng, d)
		dec, err := TwoLevelDecompose(u)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !dec.Reconstruct().ApproxEqual(u, 1e-7) {
			t.Errorf("d=%d: reconstruction failed", d)
		}
		maxOps := d * (d - 1) / 2
		if dec.CountOps() > maxOps {
			t.Errorf("d=%d: %d ops exceeds bound %d", d, dec.CountOps(), maxOps)
		}
	}
}

func TestDecomposeDiagonalNeedsNoRotations(t *testing.T) {
	u := qmath.Diag([]complex128{1, 1i, -1})
	dec, err := GivensDecompose(u)
	if err != nil {
		t.Fatal(err)
	}
	if dec.CountOps() != 0 {
		t.Errorf("diagonal target used %d rotations", dec.CountOps())
	}
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	if _, err := GivensDecompose(qmath.NewMatrix(2, 3)); err == nil {
		t.Error("rectangular accepted")
	}
	m := qmath.Identity(3).Scale(2)
	if _, err := GivensDecompose(m); err == nil {
		t.Error("non-unitary accepted")
	}
}

func TestSNAPDisplacementOnSNAPTarget(t *testing.T) {
	// A pure SNAP target is inside the ansatz family: the optimizer must
	// reach near-unit fidelity quickly.
	rng := rand.New(rand.NewSource(7))
	target := gates.SNAP([]float64{0.3, -0.5, 1.1, 2.0}).Matrix
	res, err := SynthesizeSNAPDisplacement(rng, target, SNAPDisplacementOptions{
		Blocks: 2, MaxSweeps: 30, Restarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.999 {
		t.Errorf("SNAP target fidelity = %v", res.Fidelity)
	}
}

func TestSNAPDisplacementGivensTarget(t *testing.T) {
	// A single Givens rotation between adjacent Fock levels — the
	// workhorse of constructive synthesis — should compile to high
	// fidelity with a modest block budget.
	rng := rand.New(rand.NewSource(11))
	d := 3
	target := gates.Givens(d, 0, 1, math.Pi/5, 0.4).Matrix
	res, err := SynthesizeSNAPDisplacement(rng, target, SNAPDisplacementOptions{
		Blocks: 4, MaxSweeps: 60, Restarts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.99 {
		t.Errorf("Givens target fidelity = %v (evals %d)", res.Fidelity, res.Evaluations)
	}
}

func TestSNAPDisplacementSequenceMatchesFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := 3
	target := gates.SNAP([]float64{0.1, 0.2, 0.3}).Matrix
	res, err := SynthesizeSNAPDisplacement(rng, target, SNAPDisplacementOptions{
		Blocks: 2, MaxSweeps: 20, Restarts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the unitary from the reported sequence and recompute the
	// subspace fidelity; it must match the reported value.
	v := qmath.Identity(res.WorkDim)
	for _, g := range res.Sequence() {
		v = g.Matrix.Mul(v)
	}
	var tr complex128
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			x := v.At(i, j)
			tr += complex(real(x), -imag(x)) * target.At(i, j)
		}
	}
	f := (real(tr)*real(tr) + imag(tr)*imag(tr)) / float64(d*d)
	if math.Abs(f-res.Fidelity) > 1e-9 {
		t.Errorf("sequence fidelity %v != reported %v", f, res.Fidelity)
	}
}

func TestSNAPDisplacementValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SynthesizeSNAPDisplacement(rng, qmath.NewMatrix(2, 3), SNAPDisplacementOptions{}); err == nil {
		t.Error("rectangular accepted")
	}
	if _, err := SynthesizeSNAPDisplacement(rng, qmath.Identity(3).Scale(2), SNAPDisplacementOptions{}); err == nil {
		t.Error("non-unitary accepted")
	}
	if _, err := SynthesizeSNAPDisplacement(rng, qmath.Identity(4), SNAPDisplacementOptions{WorkDim: 2}); err == nil {
		t.Error("work dim below target accepted")
	}
}

func TestPlanCSUM(t *testing.T) {
	module := cavity.ForecastModule()
	for _, d := range []int{3, 4, 10} {
		for _, route := range []cavity.CSUMRoute{cavity.RouteCrossKerr, cavity.RouteExchange} {
			plan, err := PlanCSUM(module, d, route, true)
			if err != nil {
				t.Fatalf("d=%d route=%v: %v", d, route, err)
			}
			if plan.DurationSec <= 0 {
				t.Errorf("d=%d: non-positive duration", d)
			}
			if plan.FidelityEstimate <= 0 || plan.FidelityEstimate > 1 {
				t.Errorf("d=%d: fidelity %v out of range", d, plan.FidelityEstimate)
			}
			if plan.PrimitiveCounts["SNAP"] == 0 {
				t.Errorf("d=%d: no SNAP primitives counted", d)
			}
		}
	}
	// Adjacent-cavity CSUM must cost more than co-located.
	co, err := PlanCSUM(module, 4, cavity.RouteCrossKerr, true)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := PlanCSUM(module, 4, cavity.RouteCrossKerr, false)
	if err != nil {
		t.Fatal(err)
	}
	if adj.DurationSec <= co.DurationSec {
		t.Error("adjacent-cavity CSUM not slower than co-located")
	}
	if adj.FidelityEstimate >= co.FidelityEstimate {
		t.Error("adjacent-cavity CSUM not lower fidelity")
	}
	if _, err := PlanCSUM(module, 1, cavity.RouteCrossKerr, true); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestCSUMViaFourierIsCSUM(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		c, err := CSUMViaFourier(d)
		if err != nil {
			t.Fatal(err)
		}
		// Check action on all basis states.
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				v, err := stateWithDigits(d, a, b)
				if err != nil {
					t.Fatal(err)
				}
				if err := c.RunOn(v); err != nil {
					t.Fatal(err)
				}
				wantIdx := a*d + (a+b)%d
				probs := v.Probabilities()
				if math.Abs(probs[wantIdx]-1) > 1e-9 {
					t.Errorf("d=%d: CSUMviaFourier |%d,%d> wrong", d, a, b)
				}
			}
		}
	}
}

func TestQubitCompileCost(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// 2-qubit random unitary.
	u2 := qmath.RandomUnitary(rng, 4)
	rep2, err := QubitCompileCost(u2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Qubits != 2 || rep2.CNOTs == 0 {
		t.Errorf("2-qubit report = %+v", rep2)
	}
	// 4-qubit random unitary costs much more.
	u4 := qmath.RandomUnitary(rng, 16)
	rep4, err := QubitCompileCost(u4)
	if err != nil {
		t.Fatal(err)
	}
	if rep4.CNOTs <= rep2.CNOTs*4 {
		t.Errorf("4-qubit cost %d does not dominate 2-qubit cost %d", rep4.CNOTs, rep2.CNOTs)
	}
	// Identity is free.
	repI, err := QubitCompileCost(qmath.Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if repI.CNOTs != 0 {
		t.Errorf("identity cost = %d", repI.CNOTs)
	}
	// Non-power-of-two rejected.
	if _, err := QubitCompileCost(qmath.Identity(6)); err == nil {
		t.Error("non-qubit dimension accepted")
	}
}

func TestCnotsForMultiControlled(t *testing.T) {
	cases := map[int]int{0: 0, 1: 2, 2: 6, 3: 12, 5: 30}
	for k, want := range cases {
		if got := cnotsForMultiControlled(k); got != want {
			t.Errorf("k=%d: %d, want %d", k, got, want)
		}
	}
}
