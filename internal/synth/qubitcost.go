package synth

import (
	"fmt"
	"math/bits"

	"quditkit/internal/qmath"
)

// QubitCompileReport summarizes the cost of compiling a 2^n x 2^n unitary
// to the CNOT + single-qubit gate set through the textbook two-level
// (Gray-code) construction. It is the accounting used to charge noise to
// qubit-encoded circuits in the encoding-comparison experiments.
type QubitCompileReport struct {
	Qubits      int
	TwoLevelOps int
	CNOTs       int
	Singles     int
}

// cnotsForMultiControlled returns the CNOT cost of a k-controlled
// single-qubit unitary in the ancilla-free Barenco-style construction:
// 0 for k=0, 2 for k=1, 6 for the Toffoli-class k=2, and the quadratic
// k^2+k for k>=3 (a documented approximation of the O(k^2) exact counts).
func cnotsForMultiControlled(k int) int {
	switch {
	case k <= 0:
		return 0
	case k == 1:
		return 2
	case k == 2:
		return 6
	default:
		return k*k + k
	}
}

// QubitCompileCost decomposes a unitary on n qubits into two-level
// rotations and prices each through its Gray-code path: a rotation
// between basis states i and j with Hamming distance h needs 2(h-1)
// CNOT-conjugations to bring the states adjacent plus one (n-1)-controlled
// single-qubit rotation.
func QubitCompileCost(u *qmath.Matrix) (*QubitCompileReport, error) {
	n := 0
	for (1 << n) < u.Rows {
		n++
	}
	if (1<<n) != u.Rows || u.Rows != u.Cols {
		return nil, fmt.Errorf("synth: %dx%d is not a qubit-register unitary", u.Rows, u.Cols)
	}
	dec, err := TwoLevelDecompose(u)
	if err != nil {
		return nil, err
	}
	rep := &QubitCompileReport{Qubits: n, TwoLevelOps: dec.CountOps()}
	for _, op := range dec.Ops {
		h := bits.OnesCount(uint(op.I ^ op.J))
		if h == 0 {
			continue
		}
		rep.CNOTs += 2*(h-1) + cnotsForMultiControlled(n-1)
		rep.Singles += 2*(h-1) + 3
	}
	// The final diagonal costs up to 2^n - 1 phase rotations, each an
	// (n-1)-controlled phase; in practice most are merged, so we charge
	// one multi-controlled phase per nontrivial phase entry.
	for _, p := range dec.Phases {
		if realClose(p, 1) {
			continue
		}
		rep.CNOTs += cnotsForMultiControlled(n - 1)
		rep.Singles++
	}
	return rep, nil
}

func realClose(p complex128, want float64) bool {
	re := real(p) - want
	im := imag(p)
	return re*re+im*im < 1e-14
}
