package synth

import (
	"fmt"

	"quditkit/internal/cavity"
	"quditkit/internal/circuit"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

// CSUMPlan is a compiled realization of the qudit CSUM entangler on a
// cavity module, with resource counts and a coherence-budget fidelity
// estimate. CSUM is the gate the paper singles out as the missing
// engineering component for both the simulation and optimization
// applications.
type CSUMPlan struct {
	Dim             int
	Route           cavity.CSUMRoute
	Colocated       bool
	PrimitiveCounts map[string]int
	DurationSec     float64
	// FidelityEstimate is the coherence-limited fidelity over both modes,
	// using mean photon number (d-1)/2 per mode.
	FidelityEstimate float64
}

// PlanCSUM compiles a CSUM between two modes of dimension d. When
// colocated is false the modes live in adjacent cavities and the plan
// charges two inter-cavity state transfers (full-swap beam-splitter
// operations through the coupler) around a co-located CSUM.
func PlanCSUM(module cavity.ModuleParams, d int, route cavity.CSUMRoute, colocated bool) (*CSUMPlan, error) {
	if err := module.Validate(); err != nil {
		return nil, err
	}
	if d < 2 {
		return nil, fmt.Errorf("synth: CSUM dimension %d < 2", d)
	}
	dur, err := module.CSUMDurationSec(d, route)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int)
	// Fourier conjugations on the target mode: d SNAP-displacement blocks
	// each side.
	counts["SNAP"] = 2 * d
	counts["D"] = 2 * (d + 1)
	switch route {
	case cavity.RouteCrossKerr:
		counts["crossKerr"] = 1
	case cavity.RouteExchange:
		counts["BS"] = d
		counts["SNAP"] += d
	}
	if !colocated {
		transfer := 2 * module.BeamsplitterDurationSec(3.14159265358979/2)
		dur += transfer
		counts["BS"] += 2
	}
	nbar := float64(d-1) / 2
	t1 := module.Modes[0].T1Sec
	t2 := module.Modes[0].T2Sec
	perMode := cavity.GateFidelityEstimate(dur, nbar, t1, t2)
	return &CSUMPlan{
		Dim:              d,
		Route:            route,
		Colocated:        colocated,
		PrimitiveCounts:  counts,
		DurationSec:      dur,
		FidelityEstimate: perMode * perMode,
	}, nil
}

// CSUMViaFourier returns the two-wire circuit (I⊗F) CZ (I⊗F†) realizing
// CSUM exactly from the conditional-phase primitive — the algebraic
// identity the cross-Kerr compilation route exploits.
func CSUMViaFourier(d int) (*circuit.Circuit, error) {
	c, err := circuit.New(hilbert.Dims{d, d})
	if err != nil {
		return nil, err
	}
	if err := c.Append(gates.DFT(d), 1); err != nil {
		return nil, err
	}
	if err := c.Append(gates.CZ(d, d), 0, 1); err != nil {
		return nil, err
	}
	if err := c.Append(gates.DFT(d).Dagger(), 1); err != nil {
		return nil, err
	}
	return c, nil
}
