package synth

import (
	"quditkit/internal/cavity"
	"quditkit/internal/hilbert"
	"quditkit/internal/state"
)

// stateWithDigits returns the two-qudit basis state |a,b> on dims {d,d}.
func stateWithDigits(d, a, b int) (*state.Vec, error) {
	return state.NewBasis(hilbert.Dims{d, d}, []int{a, b})
}

// forecastModuleForTest and route helpers keep extra_test readable.
func forecastModuleForTest() cavity.ModuleParams { return cavity.ForecastModule() }

func routeCrossKerr() cavity.CSUMRoute { return cavity.RouteCrossKerr }

func routeExchange() cavity.CSUMRoute { return cavity.RouteExchange }
