// Package state implements a pure-state simulator for registers of
// qudits with heterogeneous local dimensions. Gates are applied by
// gather/apply/scatter over stride cosets, so a k-wire gate costs
// O(D * m) with m the joint target dimension and D the register
// dimension — no full Kronecker matrix is ever materialized.
package state

import (
	"fmt"
	"math"
	"math/rand"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

// Vec is a pure state of a mixed-radix qudit register.
type Vec struct {
	space *hilbert.Space
	amps  qmath.Vector
}

// maxSimDim bounds the amplitude vectors this simulator will allocate
// (2^26 complex128 = 1 GiB).
const maxSimDim = 1 << 26

// NewZero returns |0...0> on the given register.
func NewZero(dims hilbert.Dims) (*Vec, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if sp.Total() > maxSimDim {
		return nil, fmt.Errorf("state: register dimension %d exceeds simulable limit %d", sp.Total(), maxSimDim)
	}
	v := &Vec{space: sp, amps: qmath.NewVector(sp.Total())}
	v.amps[0] = 1
	return v, nil
}

// NewBasis returns the computational basis state with the given per-wire
// digits.
func NewBasis(dims hilbert.Dims, digits []int) (*Vec, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if len(digits) != sp.NumWires() {
		return nil, fmt.Errorf("state: %d digits for %d wires", len(digits), sp.NumWires())
	}
	for w, g := range digits {
		if g < 0 || g >= sp.Dim(w) {
			return nil, fmt.Errorf("state: digit %d=%d out of range [0,%d)", w, g, sp.Dim(w))
		}
	}
	v := &Vec{space: sp, amps: qmath.NewVector(sp.Total())}
	v.amps[sp.Index(digits)] = 1
	return v, nil
}

// FromAmplitudes wraps (a copy of) raw amplitudes as a register state,
// normalizing them.
func FromAmplitudes(dims hilbert.Dims, amps qmath.Vector) (*Vec, error) {
	sp, err := hilbert.NewSpace(dims)
	if err != nil {
		return nil, err
	}
	if len(amps) != sp.Total() {
		return nil, fmt.Errorf("state: %d amplitudes for dimension %d", len(amps), sp.Total())
	}
	v := &Vec{space: sp, amps: amps.Clone()}
	if v.amps.Normalize() == 0 {
		return nil, fmt.Errorf("state: zero amplitude vector")
	}
	return v, nil
}

// Clone returns a deep copy of the state.
func (v *Vec) Clone() *Vec {
	return &Vec{space: v.space, amps: v.amps.Clone()}
}

// Space returns the register's index space.
func (v *Vec) Space() *hilbert.Space { return v.space }

// Dims returns the register dimensions.
func (v *Vec) Dims() hilbert.Dims { return v.space.Dims() }

// Dim returns the total Hilbert dimension.
func (v *Vec) Dim() int { return v.space.Total() }

// Amplitudes returns a copy of the amplitude vector.
func (v *Vec) Amplitudes() qmath.Vector { return v.amps.Clone() }

// RawAmplitudes returns the state's backing amplitude slice without
// copying. The slice aliases the state: writes through it mutate v, and
// it stays valid for the life of v. It exists for execution engines
// (compiled circuit plans, stochastic channel application) that must
// touch every amplitude per gate without per-call clones; such callers
// own the normalization invariant. Everyone else wants Amplitudes.
func (v *Vec) RawAmplitudes() qmath.Vector { return v.amps }

// ResetZero resets the state to |0...0> in place, reusing the existing
// amplitude storage — the per-shot reset of the trajectory engine.
func (v *Vec) ResetZero() {
	for i := range v.amps {
		v.amps[i] = 0
	}
	v.amps[0] = 1
}

// Amplitude returns the amplitude of flat basis index k.
func (v *Vec) Amplitude(k int) complex128 { return v.amps[k] }

// Apply applies gate g to the listed target wires (in gate order).
func (v *Vec) Apply(g gates.Gate, targets ...int) error {
	if len(targets) != g.Arity() {
		return fmt.Errorf("state: gate %s arity %d got %d targets", g.Name, g.Arity(), len(targets))
	}
	for i, t := range targets {
		if t < 0 || t >= v.space.NumWires() {
			return fmt.Errorf("state: target %d out of range", t)
		}
		if v.space.Dim(t) != g.Dims[i] {
			return fmt.Errorf("state: gate %s expects dim %d on slot %d, wire %d has dim %d",
				g.Name, g.Dims[i], i, t, v.space.Dim(t))
		}
	}
	if err := v.space.CheckTargets(targets); err != nil {
		return err
	}
	return v.ApplyMatrix(g.Matrix, targets)
}

// ApplyMatrix applies an arbitrary (not necessarily unitary) matrix on the
// joint space of the target wires. The matrix must be m x m with m the
// product of the target dimensions, indexed with the first target most
// significant.
func (v *Vec) ApplyMatrix(m *qmath.Matrix, targets []int) error {
	dim := v.space.TargetDim(targets)
	if m.Rows != dim || m.Cols != dim {
		return fmt.Errorf("state: matrix %dx%d does not match target dim %d", m.Rows, m.Cols, dim)
	}
	offsets := v.space.TargetOffsets(targets)
	scratch := make(qmath.Vector, dim)
	out := make(qmath.Vector, dim)
	v.space.SubspaceIter(targets, func(base int) {
		for k, off := range offsets {
			scratch[k] = v.amps[base+off]
		}
		for i := 0; i < dim; i++ {
			row := m.Row(i)
			var s complex128
			for k, x := range row {
				if x != 0 {
					s += x * scratch[k]
				}
			}
			out[i] = s
		}
		for k, off := range offsets {
			v.amps[base+off] = out[k]
		}
	})
	return nil
}

// ApplyDiagonal applies a diagonal operator (given by its diagonal) on the
// target wires; O(D) with no scratch.
func (v *Vec) ApplyDiagonal(diag []complex128, targets []int) error {
	dim := v.space.TargetDim(targets)
	if len(diag) != dim {
		return fmt.Errorf("state: diagonal length %d does not match target dim %d", len(diag), dim)
	}
	offsets := v.space.TargetOffsets(targets)
	v.space.SubspaceIter(targets, func(base int) {
		for k, off := range offsets {
			v.amps[base+off] *= diag[k]
		}
	})
	return nil
}

// InnerProduct returns <v|w>.
func (v *Vec) InnerProduct(w *Vec) complex128 {
	return v.amps.Dot(w.amps)
}

// Fidelity returns |<v|w>|^2.
func (v *Vec) Fidelity(w *Vec) float64 {
	ip := v.InnerProduct(w)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Norm returns the state norm (1 for a normalized state).
func (v *Vec) Norm() float64 { return v.amps.Norm() }

// RenormalizeInPlace rescales the amplitudes to unit norm, erroring on a
// zero state (which a trajectory branch with probability zero would be).
func (v *Vec) RenormalizeInPlace() error {
	if v.amps.Normalize() == 0 {
		return fmt.Errorf("state: cannot renormalize zero state")
	}
	return nil
}

// Probabilities returns the Born-rule probabilities of all basis states.
func (v *Vec) Probabilities() []float64 { return v.amps.Probabilities() }

// ProbabilitiesInto writes the Born-rule probabilities into dst (which
// must have length Dim) and returns it, allocating nothing.
func (v *Vec) ProbabilitiesInto(dst []float64) []float64 {
	return v.amps.ProbabilitiesInto(dst)
}

// WireProbabilities returns the marginal outcome distribution of one wire.
func (v *Vec) WireProbabilities(wire int) []float64 {
	d := v.space.Dim(wire)
	out := make([]float64, d)
	stride := v.space.Stride(wire)
	v.space.SubspaceIter([]int{wire}, func(base int) {
		for g := 0; g < d; g++ {
			a := v.amps[base+g*stride]
			out[g] += real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return out
}

// ExpectationHermitian returns <v| M |v> for a Hermitian operator on the
// target wires (result is real up to numerical noise; the real part is
// returned).
func (v *Vec) ExpectationHermitian(m *qmath.Matrix, targets []int) (float64, error) {
	w := v.Clone()
	if err := w.ApplyMatrix(m, targets); err != nil {
		return 0, err
	}
	return real(v.InnerProduct(w)), nil
}

// Sample draws n basis-state indices from the Born distribution through
// the shared binary-search sampler.
func (v *Vec) Sample(rng *rand.Rand, n int) []int {
	var sampler qmath.CDFSampler
	sampler.Load(v.Probabilities())
	out := make([]int, n)
	for s := 0; s < n; s++ {
		out[s] = sampler.Draw(rng)
	}
	return out
}

// SampleDigits draws n samples and returns their per-wire digit strings.
func (v *Vec) SampleDigits(rng *rand.Rand, n int) [][]int {
	idxs := v.Sample(rng, n)
	out := make([][]int, n)
	for i, k := range idxs {
		out[i] = v.space.Digits(k)
	}
	return out
}

// MeasureWire performs a projective measurement of one wire, collapsing
// the state in place; it returns the observed digit.
func (v *Vec) MeasureWire(rng *rand.Rand, wire int) int {
	probs := v.WireProbabilities(wire)
	r := rng.Float64()
	outcome := len(probs) - 1
	var acc float64
	for g, p := range probs {
		acc += p
		if r < acc {
			outcome = g
			break
		}
	}
	// Project and renormalize.
	stride := v.space.Stride(wire)
	d := v.space.Dim(wire)
	v.space.SubspaceIter([]int{wire}, func(base int) {
		for g := 0; g < d; g++ {
			if g != outcome {
				v.amps[base+g*stride] = 0
			}
		}
	})
	v.amps.Normalize()
	return outcome
}

// MostProbable returns the flat basis index with the highest probability.
func (v *Vec) MostProbable() int {
	best, bestP := 0, -1.0
	for i, a := range v.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > bestP {
			bestP = p
			best = i
		}
	}
	return best
}

// GlobalPhaseAlign multiplies v by the phase that makes <w|v> real
// positive, easing comparisons; it is a no-op when the overlap vanishes.
func (v *Vec) GlobalPhaseAlign(w *Vec) {
	ov := w.amps.Dot(v.amps)
	a := math.Hypot(real(ov), imag(ov))
	if a == 0 {
		return
	}
	phase := complex(real(ov)/a, -imag(ov)/a)
	for i := range v.amps {
		v.amps[i] *= phase
	}
}
