package state

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

const tol = 1e-10

// embed builds the full-register matrix for a gate on the given targets,
// used as a brute-force oracle against the strided application.
func embed(t *testing.T, dims hilbert.Dims, m *qmath.Matrix, targets []int) *qmath.Matrix {
	t.Helper()
	sp := hilbert.MustSpace(dims)
	n := sp.Total()
	full := qmath.NewMatrix(n, n)
	offsets := sp.TargetOffsets(targets)
	dim := sp.TargetDim(targets)
	sp.SubspaceIter(targets, func(base int) {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				full.Set(base+offsets[i], base+offsets[j], m.At(i, j))
			}
		}
	})
	return full
}

func TestNewZero(t *testing.T) {
	v, err := NewZero(hilbert.Dims{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if v.Amplitude(0) != 1 {
		t.Error("zero state amplitude wrong")
	}
	if math.Abs(v.Norm()-1) > tol {
		t.Error("zero state not normalized")
	}
}

func TestNewBasis(t *testing.T) {
	v, err := NewBasis(hilbert.Dims{2, 3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	idx := v.Space().Index([]int{1, 2})
	if v.Amplitude(idx) != 1 {
		t.Error("basis state amplitude wrong")
	}
	if _, err := NewBasis(hilbert.Dims{2}, []int{5}); err == nil {
		t.Error("out-of-range digit accepted")
	}
	if _, err := NewBasis(hilbert.Dims{2, 2}, []int{0}); err == nil {
		t.Error("wrong digit count accepted")
	}
}

func TestApplySingleWireMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dims := hilbert.Dims{2, 3, 2}
	for wire := 0; wire < 3; wire++ {
		u := qmath.RandomUnitary(rng, dims[wire])
		v, err := NewZero(dims)
		if err != nil {
			t.Fatal(err)
		}
		// Random initial state.
		amps := qmath.RandomState(rng, v.Dim())
		v, err = FromAmplitudes(dims, amps)
		if err != nil {
			t.Fatal(err)
		}
		want := embed(t, dims, u, []int{wire}).MulVec(v.Amplitudes())
		if err := v.ApplyMatrix(u, []int{wire}); err != nil {
			t.Fatal(err)
		}
		if !v.Amplitudes().ApproxEqual(want, 1e-9) {
			t.Errorf("wire %d: strided apply disagrees with embedded matrix", wire)
		}
	}
}

func TestApplyTwoWireMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := hilbert.Dims{2, 3, 4}
	pairs := [][]int{{0, 1}, {1, 2}, {0, 2}, {2, 0}, {1, 0}}
	for _, targets := range pairs {
		d := dims[targets[0]] * dims[targets[1]]
		u := qmath.RandomUnitary(rng, d)
		amps := qmath.RandomState(rng, hilbert.MustSpace(dims).Total())
		v, err := FromAmplitudes(dims, amps)
		if err != nil {
			t.Fatal(err)
		}
		want := embed(t, dims, u, targets).MulVec(v.Amplitudes())
		if err := v.ApplyMatrix(u, targets); err != nil {
			t.Fatal(err)
		}
		if !v.Amplitudes().ApproxEqual(want, 1e-9) {
			t.Errorf("targets %v: strided apply disagrees with embedded matrix", targets)
		}
	}
}

func TestApplyGateValidation(t *testing.T) {
	v, _ := NewZero(hilbert.Dims{2, 3})
	x3 := gates.X(3)
	if err := v.Apply(x3, 0); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := v.Apply(x3, 1, 0); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := v.Apply(x3, 5); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := v.Apply(gates.CSUM(2, 2), 0, 0); err == nil {
		t.Error("duplicate target accepted")
	}
}

func TestApplyDiagonalMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := hilbert.Dims{3, 2}
	amps := qmath.RandomState(rng, 6)
	v, _ := FromAmplitudes(dims, amps)
	w := v.Clone()
	diag := []complex128{1, -1, 1i}
	dm := qmath.Diag(diag)
	if err := v.ApplyDiagonal(diag, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := w.ApplyMatrix(dm, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !v.Amplitudes().ApproxEqual(w.Amplitudes(), tol) {
		t.Error("diagonal fast path disagrees with dense apply")
	}
}

func TestCSUMOnRegister(t *testing.T) {
	d := 3
	v, err := NewBasis(hilbert.Dims{3, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Apply(gates.CSUM(d, d), 0, 1); err != nil {
		t.Fatal(err)
	}
	// |2,2> -> |2, (2+2) mod 3> = |2,1>.
	want := v.Space().Index([]int{2, 1})
	if v.MostProbable() != want {
		t.Errorf("CSUM result index %d, want %d", v.MostProbable(), want)
	}
}

func TestWireProbabilities(t *testing.T) {
	// (|0> + |2>)/sqrt2 on a qutrit paired with |1> on a qubit.
	amps := qmath.NewVector(6)
	sp := hilbert.MustSpace(hilbert.Dims{3, 2})
	amps[sp.Index([]int{0, 1})] = complex(1/math.Sqrt2, 0)
	amps[sp.Index([]int{2, 1})] = complex(1/math.Sqrt2, 0)
	v, err := FromAmplitudes(hilbert.Dims{3, 2}, amps)
	if err != nil {
		t.Fatal(err)
	}
	p0 := v.WireProbabilities(0)
	if math.Abs(p0[0]-0.5) > tol || math.Abs(p0[1]) > tol || math.Abs(p0[2]-0.5) > tol {
		t.Errorf("wire 0 marginals = %v", p0)
	}
	p1 := v.WireProbabilities(1)
	if math.Abs(p1[1]-1) > tol {
		t.Errorf("wire 1 marginals = %v", p1)
	}
}

func TestExpectationHermitian(t *testing.T) {
	v, _ := NewBasis(hilbert.Dims{4}, []int{2})
	n := gates.Number(4)
	got, err := v.ExpectationHermitian(n, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > tol {
		t.Errorf("<2|n|2> = %v, want 2", got)
	}
}

func TestMeasureWireCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Bell-like state on two qutrits: (|00> + |11> + |22>)/sqrt3.
	sp := hilbert.MustSpace(hilbert.Dims{3, 3})
	amps := qmath.NewVector(9)
	for k := 0; k < 3; k++ {
		amps[sp.Index([]int{k, k})] = complex(1/math.Sqrt(3), 0)
	}
	for trial := 0; trial < 20; trial++ {
		v, err := FromAmplitudes(hilbert.Dims{3, 3}, amps)
		if err != nil {
			t.Fatal(err)
		}
		out := v.MeasureWire(rng, 0)
		// Perfect correlation: wire 1 must now be deterministic at the
		// same digit.
		p := v.WireProbabilities(1)
		if math.Abs(p[out]-1) > 1e-9 {
			t.Fatalf("collapse broken: outcome %d, wire1 dist %v", out, p)
		}
		if math.Abs(v.Norm()-1) > 1e-9 {
			t.Fatal("state not renormalized after measurement")
		}
	}
}

func TestMeasurementStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// |+> qubit: outcomes should be ~50/50.
	v, _ := NewZero(hilbert.Dims{2})
	if err := v.Apply(gates.DFT(2), 0); err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	const n = 2000
	samples := v.Sample(rng, n)
	for _, s := range samples {
		counts[s]++
	}
	frac := float64(counts[0]) / n
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("sampling bias: %v", frac)
	}
}

func TestSampleDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v, _ := NewBasis(hilbert.Dims{2, 3}, []int{1, 2})
	ds := v.SampleDigits(rng, 5)
	for _, d := range ds {
		if d[0] != 1 || d[1] != 2 {
			t.Errorf("sample digits = %v, want [1 2]", d)
		}
	}
}

func TestFidelity(t *testing.T) {
	v, _ := NewZero(hilbert.Dims{2})
	w, _ := NewZero(hilbert.Dims{2})
	if err := w.Apply(gates.DFT(2), 0); err != nil {
		t.Fatal(err)
	}
	if f := v.Fidelity(v.Clone()); math.Abs(f-1) > tol {
		t.Errorf("self fidelity %v", f)
	}
	if f := v.Fidelity(w); math.Abs(f-0.5) > tol {
		t.Errorf("<0|+> fidelity %v, want 0.5", f)
	}
}

func TestUnitarityPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := hilbert.Dims{3, 2, 3}
	amps := qmath.RandomState(rng, 18)
	v, _ := FromAmplitudes(dims, amps)
	seq := []struct {
		g       gates.Gate
		targets []int
	}{
		{gates.DFT(3), []int{0}},
		{gates.X(2), []int{1}},
		{gates.CSUM(3, 3), []int{0, 2}},
		{gates.RotorMixer(2, 0.3), []int{1}},
		{gates.CSUM(2, 3), []int{1, 2}},
	}
	for _, s := range seq {
		if err := v.Apply(s.g, s.targets...); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(v.Norm()-1) > 1e-9 {
		t.Errorf("norm drifted to %v", v.Norm())
	}
}

func TestGlobalPhaseAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dims := hilbert.Dims{4}
	amps := qmath.RandomState(rng, 4)
	v, _ := FromAmplitudes(dims, amps)
	w := v.Clone()
	// Rotate w by a global phase.
	if err := w.ApplyDiagonal([]complex128{1i, 1i, 1i, 1i}, []int{0}); err != nil {
		t.Fatal(err)
	}
	w.GlobalPhaseAlign(v)
	if !w.Amplitudes().ApproxEqual(v.Amplitudes(), 1e-9) {
		t.Error("phase alignment failed")
	}
}
