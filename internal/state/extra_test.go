package state

import (
	"math"
	"math/rand"
	"testing"

	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/qmath"
)

func TestNewZeroRejectsHugeRegister(t *testing.T) {
	// 30 qutrits exceed the simulable amplitude limit.
	if _, err := NewZero(hilbert.Uniform(30, 3)); err == nil {
		t.Error("oversized register accepted")
	}
}

func TestFromAmplitudesValidation(t *testing.T) {
	if _, err := FromAmplitudes(hilbert.Dims{2}, qmath.Vector{1, 0, 0}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := FromAmplitudes(hilbert.Dims{2}, qmath.Vector{0, 0}); err == nil {
		t.Error("zero vector accepted")
	}
}

func TestApplyMatrixShapeError(t *testing.T) {
	v, _ := NewZero(hilbert.Dims{3})
	if err := v.ApplyMatrix(qmath.Identity(2), []int{0}); err == nil {
		t.Error("wrong-dim matrix accepted")
	}
	if err := v.ApplyDiagonal([]complex128{1, 1}, []int{0}); err == nil {
		t.Error("wrong-length diagonal accepted")
	}
}

func TestThreeWireGateMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	dims := hilbert.Dims{2, 3, 2, 2}
	targets := []int{3, 1, 0} // deliberately permuted
	jointDim := 2 * 3 * 2
	u := qmath.RandomUnitary(rng, jointDim)
	amps := qmath.RandomState(rng, hilbert.MustSpace(dims).Total())
	v, err := FromAmplitudes(dims, amps)
	if err != nil {
		t.Fatal(err)
	}
	want := embed(t, dims, u, targets).MulVec(v.Amplitudes())
	if err := v.ApplyMatrix(u, targets); err != nil {
		t.Fatal(err)
	}
	if !v.Amplitudes().ApproxEqual(want, 1e-9) {
		t.Error("3-wire permuted-target apply disagrees with oracle")
	}
}

func TestRenormalizeInPlace(t *testing.T) {
	v, _ := NewZero(hilbert.Dims{2})
	// Apply a non-unitary matrix to denormalize.
	m := qmath.NewMatrix(2, 2)
	m.Set(0, 0, 0.5)
	if err := v.ApplyMatrix(m, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := v.RenormalizeInPlace(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm = %v", v.Norm())
	}
	// Zero state cannot be renormalized.
	z := qmath.NewMatrix(2, 2)
	if err := v.ApplyMatrix(z, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := v.RenormalizeInPlace(); err == nil {
		t.Error("zero state renormalized")
	}
}

func TestMostProbable(t *testing.T) {
	v, err := NewBasis(hilbert.Dims{3, 3}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := v.Space().Index([]int{2, 1})
	if v.MostProbable() != want {
		t.Errorf("MostProbable = %d, want %d", v.MostProbable(), want)
	}
}

func TestMixedDimensionRegister(t *testing.T) {
	// A register mixing a qubit, a qutrit, and a 5-level cavity mode.
	dims := hilbert.Dims{2, 3, 5}
	v, err := NewZero(dims)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Apply(gates.DFT(5), 2); err != nil {
		t.Fatal(err)
	}
	if err := v.Apply(gates.CSUM(2, 3), 0, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Norm()-1) > 1e-10 {
		t.Errorf("norm drifted: %v", v.Norm())
	}
	p2 := v.WireProbabilities(2)
	for k, p := range p2 {
		if math.Abs(p-0.2) > 1e-9 {
			t.Errorf("cavity level %d probability %v, want 0.2", k, p)
		}
	}
}

func TestMeasureWireDistribution(t *testing.T) {
	// Measuring the DFT state of a qutrit gives each outcome ~1/3.
	rng := rand.New(rand.NewSource(91))
	counts := make([]int, 3)
	const trials = 900
	for i := 0; i < trials; i++ {
		v, _ := NewZero(hilbert.Dims{3})
		if err := v.Apply(gates.DFT(3), 0); err != nil {
			t.Fatal(err)
		}
		counts[v.MeasureWire(rng, 0)]++
	}
	for k, c := range counts {
		frac := float64(c) / trials
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("outcome %d frequency %v", k, frac)
		}
	}
}
