// Package quditkit is a from-scratch Go reproduction of "Near-term
// Application Engineering Challenges in Emerging Superconducting Qudit
// Processors" (Venturelli, Gustafson, Kurkcuoglu, Zorzetti — DSN 2025,
// arXiv:2506.05608).
//
// The library models the paper's forecast machine — a linear chain of 3D
// SRF cavities, each contributing several long-lived bosonic modes
// operated as d-level qudits through a dispersively coupled transmon —
// and implements the three near-term applications the paper analyzes:
//
//   - lattice gauge theory simulation on truncated U(1) rotors
//     (internal/sqed),
//   - QAOA graph coloring with native one-hot qudit constraints, NDAR
//     noise-directed remapping and QRAC scaling (internal/qaoa),
//   - quantum reservoir computing on coupled dissipative modes,
//     including reservoir state tomography (internal/qrc).
//
// Substrates: dense complex linear algebra (internal/qmath), mixed-radix
// registers (internal/hilbert), qudit gates (internal/gates), pure-state
// and density-matrix simulators (internal/state, internal/density), Kraus
// and Lindblad noise (internal/noise), cavity-transmon physics
// (internal/cavity), gate synthesis including SNAP-displacement and CSUM
// compilation (internal/synth), and the device model with noise-aware
// mapping and routing (internal/arch). Package internal/core ties them
// into the unified execution façade — Processor.Submit dispatching Jobs
// with functional RunOptions (WithShots, WithNoise, WithBackend,
// WithSeed, WithWorkers) onto pluggable Backends (statevector, density
// matrix, parallel Monte-Carlo trajectories) and returning unified
// Results (state/density access, logical shot histograms, marginals,
// route reports) — and hosts the experiment registry (E1..E14) that
// regenerates every quantitative claim; see DESIGN.md and
// EXPERIMENTS.md.
package quditkit
