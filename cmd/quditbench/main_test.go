package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if err := run([]string{"-quick", "-exp", "E8,E11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nonsense"}); err == nil {
		t.Error("bad flag accepted")
	}
}
