// Command quditbench regenerates every table and quantitative claim of
// the reproduction (E1..E14, see EXPERIMENTS.md) and prints them as
// aligned text tables. Each experiment draws from its own random stream
// derived from the base seed and the experiment ID, so results do not
// depend on which subset is selected or in what order.
//
// Usage:
//
//	quditbench [-quick] [-seed N] [-exp E1,E3,...] [-list]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"quditkit/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quditbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quditbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run reduced configurations")
	seed := fs.Int64("seed", 1, "random seed")
	expList := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	list := fs.Bool("list", false, "list the experiment registry and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var selected []core.Experiment
	if *expList == "" {
		selected = core.Experiments()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, err := core.FindExperiment(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		// Per-experiment derived stream: the same seed regenerates the
		// same table whether the experiment runs alone or in a batch.
		rng := rand.New(rand.NewSource(core.DeriveSeed(*seed, e.ID)))
		tab, err := e.Run(rng, *quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(tab.String())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
