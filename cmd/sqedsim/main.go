// Command sqedsim runs the lattice-gauge-theory application: mass-gap
// extraction by real-time quench on a truncated U(1) rotor chain,
// noise-tolerance comparison between native-qudit and binary-qubit
// encodings, and shot-sampled Trotter evolution on the forecast
// processor through the core Submit API.
//
// Usage:
//
//	sqedsim [-sites N] [-ell L] [-g2 X] [-x X] [-dt T] [-steps N]
//	        [-mode quench|noise|sample] [-shots S] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"quditkit/internal/core"
	"quditkit/internal/sqed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sqedsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sqedsim", flag.ContinueOnError)
	sites := fs.Int("sites", 3, "lattice sites")
	ell := fs.Int("ell", 1, "angular momentum truncation (d = 2*ell+1)")
	g2 := fs.Float64("g2", 1.2, "electric coupling g^2")
	x := fs.Float64("x", 0.3, "hopping coupling")
	dt := fs.Float64("dt", 0.15, "Trotter step")
	steps := fs.Int("steps", 128, "evolution steps")
	mode := fs.String("mode", "quench", "quench | noise | sample")
	shots := fs.Int("shots", 256, "trajectory shots in sample mode")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	r, err := sqed.NewChain(*sites, *ell, *g2, *x, false)
	if err != nil {
		return err
	}
	fmt.Printf("rotor chain: %d sites, d=%d, g2=%.3f, x=%.3f\n",
		r.NumSites, r.LocalDim(), r.G2, r.X)

	switch *mode {
	case "quench":
		res, err := r.MassGapQuench(*dt, *steps, 0.2)
		if err != nil {
			return err
		}
		fmt.Printf("exact mass gap (ED):        %.6f\n", res.GapExact)
		fmt.Printf("measured gap (real-time):   %.6f\n", res.GapMeasured)
		fmt.Printf("relative error:             %.2f%%\n",
			100*abs(res.GapMeasured-res.GapExact)/res.GapExact)
	case "noise":
		rates := []float64{1e-4, 1e-3, 1e-2, 1e-1}
		fmt.Println("rate      qudit 1-F   qubit 1-F")
		for _, p := range rates {
			iQt, err := r.RunEncodedNoisy(sqed.EncodingQudit, *dt, 3, p)
			if err != nil {
				return err
			}
			iQb, err := r.RunEncodedNoisy(sqed.EncodingQubit, *dt, 3, p)
			if err != nil {
				return err
			}
			fmt.Printf("%-8.0e  %-10.4f  %-10.4f\n", p, iQt, iQb)
		}
	case "sample":
		// Noisy Trotter evolution routed onto the forecast device and
		// sampled with finite shots — the full execution pipeline.
		c, err := r.TrotterCircuit(*dt, *steps)
		if err != nil {
			return err
		}
		proc, err := core.NewCompactProcessor((r.NumSites+1)/2, 2, *seed)
		if err != nil {
			return err
		}
		model, err := proc.NoiseModelForDim(r.LocalDim())
		if err != nil {
			return err
		}
		res, err := proc.SubmitOne(c,
			core.WithBackend(core.Trajectory),
			core.WithNoise(model),
			core.WithShots(*shots),
			core.WithWorkers(runtime.NumCPU()))
		if err != nil {
			return err
		}
		fmt.Printf("routed: %d swaps, %.2f ms serial, coherence budget %.4f\n",
			res.Report.SwapsInserted, res.Report.DurationSec*1e3, res.Report.FidelityEstimate)
		fmt.Printf("%d trajectory shots on %s backend (seed %d):\n",
			res.Counts.Total(), res.Backend, res.Seed)
		for _, e := range res.Counts.Top(5) {
			fmt.Printf("  |%s>  %4d shots  (p = %.3f)\n", e.Key, e.N, res.Counts.Prob(e.Key))
		}
		fmt.Println("per-site electric field <m>:")
		for s := 0; s < r.NumSites; s++ {
			marg, err := res.Marginal(s)
			if err != nil {
				return err
			}
			var mean float64
			for k, p := range marg {
				mean += p * float64(k-*ell)
			}
			fmt.Printf("  site %d: %+.4f\n", s, mean)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
