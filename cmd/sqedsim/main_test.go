package main

import "testing"

func TestRunQuenchMode(t *testing.T) {
	if err := run([]string{"-sites", "2", "-steps", "32"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoiseMode(t *testing.T) {
	if err := run([]string{"-sites", "2", "-mode", "noise"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSampleMode(t *testing.T) {
	if err := run([]string{"-sites", "2", "-steps", "4", "-mode", "sample", "-shots", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run([]string{"-mode", "nonsense"}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	if err := run([]string{"-sites", "1"}); err == nil {
		t.Error("single-site chain accepted")
	}
}
