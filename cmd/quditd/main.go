// Command quditd is the quditkit job-service daemon: it fronts one
// simulated forecast-cavity processor with the asynchronous job queue
// and content-addressed result cache of internal/serve, exposed as a
// JSON-over-HTTP API:
//
//	POST   /v1/jobs               submit a circuit (add ?wait=1 to block)
//	GET    /v1/jobs/{id}          poll a job (add ?wait=1 to block)
//	GET    /v1/jobs/{id}/events   stream state transitions (SSE)
//	DELETE /v1/jobs/{id}          cancel a job
//	GET    /v1/stats              queue and cache counters
//	GET    /metrics               Prometheus text exposition
//	POST   /v1/sweeps             submit a parameterized experiment sweep
//	GET    /v1/sweeps/{id}        poll a sweep (add ?wait=1 to block)
//	GET    /v1/sweeps/{id}/events stream cell settlements + aggregate (SSE)
//	DELETE /v1/sweeps/{id}        cancel a sweep (reaps unsettled cells)
//
// Sweeps (internal/experiment) expand one request — an RB decay curve,
// a QAOA (gamma, beta) grid, an sQED Trotter scan, or a QRC series —
// into many content-addressed jobs, run them through this node's queue
// (or fan them across the fleet under -role coordinator), and fold the
// results into the kind's aggregate server-side. -sweep-parallel tunes
// how many cells one sweep keeps in flight.
//
// Example:
//
//	quditd -addr :8080 -cavities 2 -modes 2 -seed 1
//	curl -s localhost:8080/v1/jobs?wait=1 -d '{
//	  "circuit": {"dims": [3,3,3], "ops": [
//	    {"gate": "dft",  "targets": [0]},
//	    {"gate": "csum", "targets": [0,1]},
//	    {"gate": "csum", "targets": [0,2]}]},
//	  "shots": 512}'
//
// A "device" stanza ({"cavities": N, "modes": M, "level": 0|1|2})
// transpiles the job against a wire-requested forecast chain; the
// response then carries the route report and, at level 2, the counts
// degraded by (and a copy of) the device-derived noise model.
//
// The -role flag selects the topology (see internal/cluster and
// docs/OPERATIONS.md):
//
//	-role standalone    one node, queue + cache + simulator (default)
//	-role coordinator   fleet front door: same /v1/jobs API, jobs
//	                    consistent-hashed across registered workers
//	                    (-heartbeat-ttl tunes liveness)
//	-role worker        a standalone node that also registers with
//	                    -coordinator, heartbeats, and drains on
//	                    shutdown (-advertise, -id, -heartbeat)
//
// quditd shuts down gracefully on SIGINT/SIGTERM: running sweeps are
// cancelled and their cells settled while the listener still serves
// watchers, then in-flight HTTP requests and queued jobs drain before
// the process exits; a worker first deregisters and waits for the
// coordinator to collect its results.
//
// With -tenants FILE the daemon is multi-tenant: the file registers
// API keys with per-tenant quotas (queued jobs, inflight shots,
// concurrent sweeps), weights, and priority classes; every job and
// sweep route then requires an X-API-Key header, queued work drains
// under weighted deficit-round-robin instead of FIFO, and /v1/stats
// and /metrics report per-tenant usage. Results remain byte-identical
// under any scheduling interleaving — seeds are content-addressed, so
// tenancy changes who waits, never what is computed.
//
// With -journal DIR the daemon is crash-durable: every accepted job
// and sweep is recorded in a write-ahead journal (internal/journal)
// before the submitter hears an ID, and every settlement is recorded
// after. A restart on the same directory replays unsettled work —
// jobs re-enter the queue under their original IDs, sweeps re-run only
// their unfinished cells — before the listener opens, so clients that
// poll or stream by ID resume where they left off. A corrupt journal
// (anything beyond a torn final record) fails startup loudly rather
// than serving from partial state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quditkit/internal/cluster"
	"quditkit/internal/core"
	"quditkit/internal/experiment"
	"quditkit/internal/journal"
	"quditkit/internal/serve"
	"quditkit/internal/tenant"
)

// options collects the daemon's flag-configurable parameters.
type options struct {
	addr     string
	cavities int
	modes    int
	seed     int64
	shards   int
	queue    int
	batch    int
	cache    int
	retain   int

	role           string
	coordinator    string
	advertise      string
	id             string
	heartbeat      time.Duration
	hbTTL          time.Duration
	controlTimeout time.Duration
	agentTimeout   time.Duration
	checkpoint     string
	journal        string

	sweepParallel int
	tenants       string
}

// parseFlags reads options from an argument list (excluding the
// program name).
func parseFlags(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("quditd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.cavities, "cavities", 2, "forecast cavities in the device chain")
	fs.IntVar(&o.modes, "modes", 2, "modes per cavity (trimmed so routed registers stay simulable)")
	fs.Int64Var(&o.seed, "seed", 1, "processor base seed (all results derive from it)")
	fs.IntVar(&o.shards, "shards", 0, "queue/worker shards (0 = default)")
	fs.IntVar(&o.queue, "queue", 0, "per-shard queue depth (0 = default)")
	fs.IntVar(&o.batch, "batch", 0, "max jobs per Submit batch (0 = default)")
	fs.IntVar(&o.cache, "cache", 0, "result-cache entries (0 = default, negative disables)")
	fs.IntVar(&o.retain, "retain", 0, "settled job records kept for lookup (0 = default, negative keeps all)")
	fs.StringVar(&o.role, "role", "standalone", "node role: standalone, coordinator, or worker")
	fs.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL (required for -role worker)")
	fs.StringVar(&o.advertise, "advertise", "", "base URL the coordinator dispatches to (worker; default http://<bound addr>)")
	fs.StringVar(&o.id, "id", "", "stable worker name (worker; default <bound addr>)")
	fs.DurationVar(&o.heartbeat, "heartbeat", 0, "worker heartbeat interval (0 = accept the coordinator's suggestion)")
	fs.DurationVar(&o.hbTTL, "heartbeat-ttl", 5*time.Second, "coordinator: missed-heartbeat window before a worker is reaped")
	fs.DurationVar(&o.controlTimeout, "control-timeout", 30*time.Second, "coordinator: per-request bound on control traffic to workers (dispatch, cancel, stats)")
	fs.DurationVar(&o.agentTimeout, "agent-timeout", 10*time.Second, "worker: per-request bound on control traffic to the coordinator (register, heartbeat)")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "coordinator: state checkpoint file; restart replays registered workers and unsettled jobs from it (empty disables)")
	fs.StringVar(&o.journal, "journal", "", "write-ahead journal directory; restart replays unsettled jobs and sweeps from it (empty disables)")
	fs.IntVar(&o.sweepParallel, "sweep-parallel", 0, "cells one sweep keeps in flight (0 = default)")
	fs.StringVar(&o.tenants, "tenants", "", "tenant registry JSON file; enables API-key auth, per-tenant quotas, and weighted scheduling (empty runs single-tenant)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	switch o.role {
	case "standalone", "coordinator", "worker":
	default:
		fmt.Fprintf(stderr, "quditd: unknown role %q (standalone, coordinator, worker)\n", o.role)
		return options{}, fmt.Errorf("unknown role %q", o.role)
	}
	if o.role == "worker" && o.coordinator == "" {
		fmt.Fprintln(stderr, "quditd: -role worker requires -coordinator")
		return options{}, errors.New("-role worker requires -coordinator")
	}
	return o, nil
}

// newService builds the processor and job service the daemon fronts.
// A non-nil jobs journal makes every wire-submitted job crash-durable.
func newService(o options, jobs *journal.Journal, tenants *tenant.Registry) (*serve.Service, error) {
	proc, err := core.NewCompactProcessor(o.cavities, o.modes, o.seed)
	if err != nil {
		return nil, fmt.Errorf("building processor: %w", err)
	}
	return serve.New(proc, serve.Config{
		Shards:     o.shards,
		QueueDepth: o.queue,
		BatchSize:  o.batch,
		CacheSize:  o.cache,
		RetainJobs: o.retain,
		Journal:    jobs,
		Tenants:    tenants,
	})
}

// loadTenants loads the -tenants registry, or returns nil (single
// tenant, no auth) when the flag is unset.
func loadTenants(o options, logger *log.Logger) (*tenant.Registry, error) {
	if o.tenants == "" {
		return nil, nil
	}
	reg, err := tenant.LoadFile(o.tenants)
	if err != nil {
		return nil, fmt.Errorf("loading tenant registry: %w", err)
	}
	logger.Printf("quditd enforcing %d tenant(s) from %s", len(reg.Accounts()), o.tenants)
	return reg, nil
}

// openJournals prepares the daemon's durable state directory and opens
// the journals the role needs: all roles journal sweeps; standalone and
// worker nodes also journal jobs (a coordinator's job durability lives
// in its -checkpoint file). Recovery is strict — anything beyond a torn
// final record is a startup error, never silently partial state.
func openJournals(o options) (jobs, sweeps *journal.Journal, jobsRec, sweepsRec journal.Recovery, err error) {
	if err = os.MkdirAll(o.journal, 0o755); err != nil {
		return nil, nil, journal.Recovery{}, journal.Recovery{}, fmt.Errorf("creating journal directory: %w", err)
	}
	if o.role != "coordinator" {
		jobs, jobsRec, err = journal.Open(o.journal, "jobs")
		if err != nil {
			return nil, nil, journal.Recovery{}, journal.Recovery{}, fmt.Errorf("opening job journal: %w", err)
		}
	}
	sweeps, sweepsRec, err = journal.Open(o.journal, "sweeps")
	if err != nil {
		if jobs != nil {
			jobs.Close()
		}
		return nil, nil, journal.Recovery{}, journal.Recovery{}, fmt.Errorf("opening sweep journal: %w", err)
	}
	return jobs, sweeps, jobsRec, sweepsRec, nil
}

// run serves the API until ctx is cancelled, then shuts down
// gracefully. If ready is non-nil it receives the bound listen address
// once the server is accepting connections.
func run(ctx context.Context, o options, logger *log.Logger, ready chan<- net.Addr) error {
	if o.role == "coordinator" {
		return runCoordinator(ctx, o, logger, ready)
	}
	return runNode(ctx, o, logger, ready)
}

// runNode serves a standalone or worker node: the full queue + cache +
// simulator stack, plus (for workers) the cluster agent that makes it
// part of a fleet.
func runNode(ctx context.Context, o options, logger *log.Logger, ready chan<- net.Addr) error {
	var (
		jobsJournal, sweepsJournal *journal.Journal
		jobsRec, sweepsRec         journal.Recovery
	)
	if o.journal != "" {
		var err error
		jobsJournal, sweepsJournal, jobsRec, sweepsRec, err = openJournals(o)
		if err != nil {
			return err
		}
		// Closed last: settlements recorded while the queue drains
		// during shutdown must still reach disk.
		defer sweepsJournal.Close()
		defer jobsJournal.Close()
	}
	tenants, err := loadTenants(o, logger)
	if err != nil {
		return err
	}
	svc, err := newService(o, jobsJournal, tenants)
	if err != nil {
		return err
	}
	if jobsJournal != nil {
		n, err := svc.Replay(jobsRec)
		if err != nil {
			svc.Close()
			return fmt.Errorf("replaying job journal: %w", err)
		}
		if n > 0 {
			logger.Printf("quditd replayed %d unsettled job(s) from %s", n, o.journal)
		}
	}
	mgr, err := experiment.NewManager(experiment.ServeRunner{Service: svc},
		experiment.Config{Parallel: o.sweepParallel, Journal: sweepsJournal, Tenants: tenants})
	if err != nil {
		svc.Close()
		return err
	}
	if sweepsJournal != nil {
		n, err := mgr.Replay(sweepsRec)
		if err != nil {
			mgr.Close()
			svc.Close()
			return fmt.Errorf("replaying sweep journal: %w", err)
		}
		if n > 0 {
			logger.Printf("quditd resumed %d unsettled sweep(s) from %s", n, o.journal)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		mgr.Close()
		svc.Close()
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	server := &http.Server{Handler: experiment.NewHandler(mgr, serve.NewHandler(svc))}

	logger.Printf("quditd %s serving on %s (device: %d cavities x %d modes, seed %d)",
		o.role, ln.Addr(), o.cavities, o.modes, o.seed)

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	var agent *cluster.Agent
	if o.role == "worker" {
		id := o.id
		if id == "" {
			id = ln.Addr().String()
		}
		advertise := o.advertise
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		agent, err = cluster.StartAgent(cluster.AgentConfig{
			CoordinatorURL: o.coordinator,
			ID:             id,
			AdvertiseURL:   advertise,
			Interval:       o.heartbeat,
			Timeout:        o.agentTimeout,
			Logger:         logger,
		})
		if err != nil {
			server.Close()
			mgr.Close()
			svc.Close()
			<-errc
			return err
		}
	}
	// Readiness is signalled only after registration, so a fleet's
	// worker is routable the moment it reports ready.
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-errc:
		mgr.Close()
		svc.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("quditd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if agent != nil {
		// Deregister before closing the listener: the drain blocks
		// until the coordinator has collected every result this worker
		// still owes, and that collection needs our HTTP surface up.
		if err := agent.Drain(shutdownCtx); err != nil {
			logger.Printf("quditd drain: %v", err)
		}
	}
	// Close the sweep manager before the listener: cancellation settles
	// every unsettled cell (and journals the settlements), so watchers
	// still streaming /v1/sweeps/{id}/events receive the terminal
	// cancelled view instead of a torn connection — and a journaled
	// restart knows the sweeps ended on purpose.
	mgr.Close()
	shutdownErr := server.Shutdown(shutdownCtx)
	svc.Close() // drain queued jobs after the listener stops
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("quditd stopped")
	return shutdownErr
}

// runCoordinator serves the fleet front door: same job API, no
// simulator — every job is dispatched to a registered worker.
func runCoordinator(ctx context.Context, o options, logger *log.Logger, ready chan<- net.Addr) error {
	var (
		sweepsJournal *journal.Journal
		sweepsRec     journal.Recovery
	)
	if o.journal != "" {
		// A coordinator journals sweeps only: its job durability is the
		// -checkpoint file, which already replays the dispatch table.
		var err error
		_, sweepsJournal, _, sweepsRec, err = openJournals(o)
		if err != nil {
			return err
		}
		defer sweepsJournal.Close()
	}
	proc, err := core.NewCompactProcessor(o.cavities, o.modes, o.seed)
	if err != nil {
		return fmt.Errorf("building processor: %w", err)
	}
	tenants, err := loadTenants(o, logger)
	if err != nil {
		return err
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Proc:           proc,
		HeartbeatTTL:   o.hbTTL,
		RetainJobs:     o.retain,
		ControlTimeout: o.controlTimeout,
		CheckpointPath: o.checkpoint,
		Tenants:        tenants,
	})
	if err != nil {
		return err
	}
	mgr, err := experiment.NewManager(coord, experiment.Config{Parallel: o.sweepParallel, Journal: sweepsJournal, Tenants: tenants})
	if err != nil {
		coord.Close()
		return err
	}
	if sweepsJournal != nil {
		n, err := mgr.Replay(sweepsRec)
		if err != nil {
			mgr.Close()
			coord.Close()
			return fmt.Errorf("replaying sweep journal: %w", err)
		}
		if n > 0 {
			logger.Printf("quditd coordinator resumed %d unsettled sweep(s) from %s", n, o.journal)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		mgr.Close()
		coord.Close()
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	server := &http.Server{Handler: experiment.NewHandler(mgr, cluster.Handler(coord))}

	logger.Printf("quditd coordinator serving on %s (heartbeat TTL %v)", ln.Addr(), o.hbTTL)
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		mgr.Close()
		coord.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("quditd coordinator shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Sweep manager first, for the same reason as runNode: cells settle
	// as cancelled while event watchers can still hear about it.
	mgr.Close()
	shutdownErr := server.Shutdown(shutdownCtx)
	coord.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("quditd coordinator stopped")
	return shutdownErr
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, logger, nil); err != nil {
		logger.Fatal(err)
	}
}
