// Command quditd is the quditkit job-service daemon: it fronts one
// simulated forecast-cavity processor with the asynchronous job queue
// and content-addressed result cache of internal/serve, exposed as a
// JSON-over-HTTP API:
//
//	POST   /v1/jobs        submit a circuit (add ?wait=1 to block)
//	GET    /v1/jobs/{id}   poll a job (add ?wait=1 to block)
//	DELETE /v1/jobs/{id}   cancel a job
//	GET    /v1/stats       queue and cache counters
//
// Example:
//
//	quditd -addr :8080 -cavities 2 -modes 2 -seed 1
//	curl -s localhost:8080/v1/jobs?wait=1 -d '{
//	  "circuit": {"dims": [3,3,3], "ops": [
//	    {"gate": "dft",  "targets": [0]},
//	    {"gate": "csum", "targets": [0,1]},
//	    {"gate": "csum", "targets": [0,2]}]},
//	  "shots": 512}'
//
// A "device" stanza ({"cavities": N, "modes": M, "level": 0|1|2})
// transpiles the job against a wire-requested forecast chain; the
// response then carries the route report and, at level 2, the counts
// degraded by (and a copy of) the device-derived noise model.
//
// quditd shuts down gracefully on SIGINT/SIGTERM: in-flight HTTP
// requests and queued jobs drain before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quditkit/internal/core"
	"quditkit/internal/serve"
)

// options collects the daemon's flag-configurable parameters.
type options struct {
	addr     string
	cavities int
	modes    int
	seed     int64
	shards   int
	queue    int
	batch    int
	cache    int
	retain   int
}

// parseFlags reads options from an argument list (excluding the
// program name).
func parseFlags(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := flag.NewFlagSet("quditd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.cavities, "cavities", 2, "forecast cavities in the device chain")
	fs.IntVar(&o.modes, "modes", 2, "modes per cavity (trimmed so routed registers stay simulable)")
	fs.Int64Var(&o.seed, "seed", 1, "processor base seed (all results derive from it)")
	fs.IntVar(&o.shards, "shards", 0, "queue/worker shards (0 = default)")
	fs.IntVar(&o.queue, "queue", 0, "per-shard queue depth (0 = default)")
	fs.IntVar(&o.batch, "batch", 0, "max jobs per Submit batch (0 = default)")
	fs.IntVar(&o.cache, "cache", 0, "result-cache entries (0 = default, negative disables)")
	fs.IntVar(&o.retain, "retain", 0, "settled job records kept for lookup (0 = default, negative keeps all)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// newService builds the processor and job service the daemon fronts.
func newService(o options) (*serve.Service, error) {
	proc, err := core.NewCompactProcessor(o.cavities, o.modes, o.seed)
	if err != nil {
		return nil, fmt.Errorf("building processor: %w", err)
	}
	return serve.New(proc, serve.Config{
		Shards:     o.shards,
		QueueDepth: o.queue,
		BatchSize:  o.batch,
		CacheSize:  o.cache,
		RetainJobs: o.retain,
	})
}

// run serves the API until ctx is cancelled, then shuts down
// gracefully: the HTTP server drains in-flight requests and the job
// service drains its queues. If ready is non-nil it receives the bound
// listen address once the server is accepting connections.
func run(ctx context.Context, o options, logger *log.Logger, ready chan<- net.Addr) error {
	svc, err := newService(o)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		svc.Close()
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	server := &http.Server{Handler: serve.NewHandler(svc)}

	logger.Printf("quditd serving on %s (device: %d cavities x %d modes, seed %d)",
		ln.Addr(), o.cavities, o.modes, o.seed)
	if ready != nil {
		ready <- ln.Addr()
	}

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	logger.Printf("quditd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := server.Shutdown(shutdownCtx)
	svc.Close() // drain queued jobs after the listener stops
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("quditd stopped")
	return shutdownErr
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, logger, nil); err != nil {
		logger.Fatal(err)
	}
}
