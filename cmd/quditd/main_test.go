package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-cavities", "3", "-cache", "-1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:0" || o.cavities != 3 || o.cache != -1 {
		t.Errorf("options = %+v", o)
	}
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestNewServiceRejectsBadDevice(t *testing.T) {
	if _, err := newService(options{cavities: 0, modes: 0, seed: 1}, nil, nil); err == nil {
		t.Error("empty device accepted")
	}
}

// TestRunStartupServeShutdown is the daemon smoke test: boot on an
// ephemeral port, serve one job end to end, then shut down gracefully
// on context cancellation.
func TestRunStartupServeShutdown(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() { done <- run(ctx, o, logger, ready) }()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	body := []byte(`{"circuit":{"dims":[3],"ops":[{"gate":"dft","targets":[0]}]},"shots":16}`)
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.State != "done" {
		t.Fatalf("job response status %d view %+v", resp.StatusCode, view)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// startRun boots run() with the given flags and waits for readiness,
// returning the base URL, the cancel that triggers graceful shutdown,
// and the channel run's error arrives on.
func startRun(t *testing.T, args []string) (string, context.CancelFunc, chan error) {
	t.Helper()
	o, err := parseFlags(args, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, log.New(io.Discard, "", 0), ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

// stopRun cancels the daemon and waits for a clean exit.
func stopRun(t *testing.T, cancel context.CancelFunc, done chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after graceful shutdown", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// submitJob posts one blocking job and returns its settled view.
func submitJob(t *testing.T, base string) (id, state string) {
	t.Helper()
	body := []byte(`{"circuit":{"dims":[3],"ops":[{"gate":"dft","targets":[0]}]},"shots":16}`)
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job submit status = %d", resp.StatusCode)
	}
	return view.ID, view.State
}

// TestRunJournalRestart boots a journaled standalone daemon, serves a
// job, restarts it on the same directory, and checks that the replayed
// journal carries the job-ID counter across the restart and that the
// stats body reports both durability gauge blocks.
func TestRunJournalRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-journal", dir}

	base, cancel, done := startRun(t, args)
	id, state := submitJob(t, base)
	if id != "j-000001" || state != "done" {
		t.Fatalf("first run job = %s/%s, want j-000001/done", id, state)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := stats["journal"]; !ok {
		t.Error("stats missing job journal block")
	}
	if _, ok := stats["sweep_journal"]; !ok {
		t.Error("stats missing sweep_journal block")
	}
	stopRun(t, cancel, done)

	// Restart on the same directory: replay restores the ID counter, so
	// the next accepted job continues the sequence instead of reissuing
	// j-000001.
	base, cancel, done = startRun(t, args)
	id, state = submitJob(t, base)
	if id != "j-000002" || state != "done" {
		t.Fatalf("post-restart job = %s/%s, want j-000002/done", id, state)
	}
	stopRun(t, cancel, done)
}

// TestRunCorruptJournalFailsStartup checks that a damaged journal stops
// the daemon before it listens, rather than serving from partial state.
func TestRunCorruptJournalFailsStartup(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/jobs.wal", []byte("XXXXXXXXXXXXXXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-journal", dir}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), o, log.New(io.Discard, "", 0), nil); err == nil {
		t.Fatal("run accepted a corrupt journal")
	}
}

func TestParseFlagsRoles(t *testing.T) {
	if _, err := parseFlags([]string{"-role", "boss"}, io.Discard); err == nil {
		t.Error("unknown role accepted")
	}
	if _, err := parseFlags([]string{"-role", "worker"}, io.Discard); err == nil {
		t.Error("worker without -coordinator accepted")
	}
	o, err := parseFlags([]string{"-role", "worker", "-coordinator", "http://127.0.0.1:1", "-id", "w7"}, io.Discard)
	if err != nil || o.role != "worker" || o.id != "w7" {
		t.Errorf("worker flags: %+v err %v", o, err)
	}
	o, err = parseFlags([]string{"-role", "coordinator", "-heartbeat-ttl", "2s"}, io.Discard)
	if err != nil || o.role != "coordinator" || o.hbTTL != 2*time.Second {
		t.Errorf("coordinator flags: %+v err %v", o, err)
	}
}

// TestRunFleetSmoke boots a coordinator and a worker through run() —
// the same code path the binary takes — submits one job through the
// coordinator, and shuts both down gracefully (worker first, draining
// through deregistration).
func TestRunFleetSmoke(t *testing.T) {
	logger := log.New(io.Discard, "", 0)

	coordOpts, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-role", "coordinator", "-heartbeat-ttl", "2s"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	coordCtx, coordCancel := context.WithCancel(context.Background())
	coordReady := make(chan net.Addr, 1)
	coordDone := make(chan error, 1)
	go func() { coordDone <- run(coordCtx, coordOpts, logger, coordReady) }()
	var coordAddr net.Addr
	select {
	case coordAddr = <-coordReady:
	case err := <-coordDone:
		t.Fatalf("coordinator exited: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never ready")
	}
	coordBase := "http://" + coordAddr.String()

	workerOpts, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-role", "worker", "-coordinator", coordBase, "-id", "smoke-w1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	workerCtx, workerCancel := context.WithCancel(context.Background())
	workerReady := make(chan net.Addr, 1)
	workerDone := make(chan error, 1)
	go func() { workerDone <- run(workerCtx, workerOpts, logger, workerReady) }()
	select {
	case <-workerReady:
	case err := <-workerDone:
		t.Fatalf("worker exited: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("worker never ready")
	}

	body := []byte(`{"circuit":{"dims":[3],"ops":[{"gate":"dft","targets":[0]}]},"shots":16}`)
	resp, err := http.Post(coordBase+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		State  string `json:"state"`
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.State != "done" || view.Worker != "smoke-w1" {
		t.Fatalf("fleet job: status %d view %+v", resp.StatusCode, view)
	}

	workerCancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not shut down")
	}
	coordCancel()
	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}
