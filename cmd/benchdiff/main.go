// Command benchdiff guards against benchmark regressions in CI: it
// parses `go test -bench -benchmem` output and compares every tracked
// benchmark against the committed BENCH_*.json baselines, failing when a
// metric regresses past its threshold.
//
// Usage:
//
//	benchdiff [-baseline 'BENCH_*.json'] [-threshold 0.25]
//	          [-ns-threshold X] [-scaling-bench PREFIX]
//	          [-scaling-floor F] [-cores N] [bench-output.txt]
//
// The bench output is read from the named file, or stdin when no file
// is given. Baselines are the per-PR BENCH_N.json reports already
// committed at the repo root: each "benchmarks" entry's "after" block
// carries the reference ns_op / b_op / allocs_op; when several baseline
// files track the same benchmark, the highest-numbered (most recent)
// file wins. Benchmarks present in the output but in no baseline — or
// vice versa — are reported and skipped, never failed: the tracked set
// is exactly the intersection.
//
// Allocation metrics (allocs/op, B/op) are deterministic across
// machines, so they get the tight default threshold. Wall-clock ns/op
// varies with the host CPU; -ns-threshold loosens only that metric
// (zero means "use -threshold", a negative value skips ns comparison
// entirely).
//
// The scaling gate (-scaling-bench, -scaling-floor) is a same-run
// check, independent of any baseline file: PREFIX names a benchmark
// family whose variants end in a worker count (for example
// "BenchmarkSubmitTrajectories/workers="), and every variant K > 1
// must achieve a parallel efficiency
//
//	eff_K = (ns_1 / ns_K) / min(K, cores)
//
// of at least the floor. Dividing by min(K, cores) rather than K keeps
// the gate honest on hosts with fewer cores than the widest variant:
// oversubscribed workers can't speed anything up and aren't asked to.
// The gate catches the regressions a fixed ns/op threshold can't — a
// change that leaves single-worker time alone but serializes the pool
// (a stray global lock, false sharing in the batch arena) tanks
// efficiency while every absolute number still looks plausible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// baselineEntry is the reference measurement of one benchmark.
type baselineEntry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baselineFile is the subset of a BENCH_N.json report benchdiff reads.
type baselineFile struct {
	Benchmarks map[string]struct {
		After *baselineEntry `json:"after"`
	} `json:"benchmarks"`
}

// measurement is one parsed `go test -bench -benchmem` result line.
type measurement struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
}

// benchLine matches e.g.
//
//	BenchmarkFoo/sub=1-4  100  12345 ns/op  678 B/op  9 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so names match the
// baseline keys.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	pattern := fs.String("baseline", "BENCH_*.json", "glob of committed baseline reports")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional regression for B/op and allocs/op")
	nsThreshold := fs.Float64("ns-threshold", 0, "allowed fractional regression for ns/op (0 = -threshold, negative skips ns)")
	scalingBench := fs.String("scaling-bench", "", "benchmark name prefix whose variants end in a worker count, e.g. BenchmarkSubmitTrajectories/workers=")
	scalingFloor := fs.Float64("scaling-floor", 0, "minimum parallel efficiency (ns_1/ns_K)/min(K,cores); 0 disables the gate")
	cores := fs.Int("cores", runtime.NumCPU(), "physical parallelism available to the measured run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nsTol := *nsThreshold
	if nsTol == 0 {
		nsTol = *threshold
	}

	baseline, err := loadBaselines(*pattern)
	if err != nil {
		return err
	}
	if len(baseline) == 0 {
		return fmt.Errorf("no baseline benchmarks found under %q", *pattern)
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	compared := 0
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: not in any baseline\n", name)
			continue
		}
		got := measured[name]
		compared++
		check := func(metric string, gotV, baseV, tol float64) {
			if baseV <= 0 || tol < 0 {
				return // untracked metric (e.g. 0 allocs) or skipped
			}
			ratio := gotV/baseV - 1
			status := "ok"
			if ratio > tol {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s: %.0f vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
					name, metric, gotV, baseV, ratio*100, tol*100))
			}
			fmt.Fprintf(stdout, "%-10s %s %s: %.0f vs %.0f (%+.1f%%)\n",
				status, name, metric, gotV, baseV, ratio*100)
		}
		check("ns/op", got.NsOp, base.NsOp, nsTol)
		check("B/op", got.BOp, base.BOp, *threshold)
		check("allocs/op", got.AllocsOp, base.AllocsOp, *threshold)
	}
	if compared == 0 {
		return fmt.Errorf("no measured benchmark matched a baseline entry")
	}
	if *scalingFloor > 0 {
		scaleFailures, err := checkScaling(measured, *scalingBench, *scalingFloor, *cores, stdout)
		if err != nil {
			return err
		}
		failures = append(failures, scaleFailures...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL", f)
		}
		return fmt.Errorf("%d benchmark metric(s) regressed past the threshold", len(failures))
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) within thresholds\n", compared)
	return nil
}

// checkScaling enforces the parallel-efficiency floor on one benchmark
// family: every measured "<prefix><K>" with K > 1 must reach
// (ns_1/ns_K)/min(K, cores) >= floor. The single-worker variant is the
// denominator and must be present; a family with no multi-worker
// variants is an error, since a gate that silently checks nothing
// would pass forever.
func checkScaling(measured map[string]measurement, prefix string, floor float64, cores int, stdout io.Writer) ([]string, error) {
	if prefix == "" {
		return nil, fmt.Errorf("-scaling-floor set but -scaling-bench empty")
	}
	if cores < 1 {
		return nil, fmt.Errorf("-cores must be positive, got %d", cores)
	}
	variants := make(map[int]float64)
	for name, m := range measured {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		k, err := strconv.Atoi(name[len(prefix):])
		if err != nil || k < 1 {
			continue // not a worker-count variant of this family
		}
		variants[k] = m.NsOp
	}
	base, ok := variants[1]
	if !ok || base <= 0 {
		return nil, fmt.Errorf("scaling gate: no single-worker measurement for %q", prefix)
	}
	ks := make([]int, 0, len(variants))
	for k := range variants {
		if k > 1 {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("scaling gate: no multi-worker variants of %q measured", prefix)
	}
	sort.Ints(ks)
	var failures []string
	for _, k := range ks {
		ideal := k
		if cores < ideal {
			ideal = cores
		}
		speedup := base / variants[k]
		eff := speedup / float64(ideal)
		status := "ok"
		if eff < floor {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"%s%d: efficiency %.2f below floor %.2f (%.2fx speedup over 1 worker, ideal %dx)",
				prefix, k, eff, floor, speedup, ideal))
		}
		fmt.Fprintf(stdout, "%-10s scaling %s%d: %.2fx speedup, efficiency %.2f (floor %.2f, cores %d)\n",
			status, prefix, k, speedup, eff, floor, cores)
	}
	return failures, nil
}

// baselineNum extracts the report number from a BENCH_N.json path; -1
// when the name carries no number.
var baselineNumRe = regexp.MustCompile(`(\d+)`)

func baselineNum(path string) int {
	m := baselineNumRe.FindString(filepath.Base(path))
	if m == "" {
		return -1
	}
	n, err := strconv.Atoi(m)
	if err != nil {
		return -1
	}
	return n
}

// loadBaselines merges all matching baseline files; higher-numbered
// (more recent) reports win per benchmark. Ordering is numeric on the
// report number, not lexical — lexically BENCH_10 sorts before
// BENCH_3 and the stale baseline would silently win from the tenth
// report onward.
func loadBaselines(pattern string) (map[string]baselineEntry, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool {
		ni, nj := baselineNum(paths[i]), baselineNum(paths[j])
		if ni != nj {
			return ni < nj
		}
		return paths[i] < paths[j]
	})
	out := make(map[string]baselineEntry)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for name, b := range bf.Benchmarks {
			if b.After == nil {
				continue // benchmark retired in this report
			}
			out[name] = *b.After
		}
	}
	return out, nil
}

// parseBench extracts measurements from `go test -bench` output. A
// benchmark appearing more than once keeps its best (minimum) ns/op —
// the conventional stance that noise only ever slows a run down.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var bop, allocs float64
		if m[3] != "" {
			bop, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		got := measurement{NsOp: ns, BOp: bop, AllocsOp: allocs}
		if prev, ok := out[name]; ok && prev.NsOp <= got.NsOp {
			continue
		}
		out[name] = got
	}
	return out, sc.Err()
}
