// Command benchdiff guards against benchmark regressions in CI: it
// parses `go test -bench -benchmem` output and compares every tracked
// benchmark against the committed BENCH_*.json baselines, failing when a
// metric regresses past its threshold.
//
// Usage:
//
//	benchdiff [-baseline 'BENCH_*.json'] [-threshold 0.25]
//	          [-ns-threshold X] [bench-output.txt]
//
// The bench output is read from the named file, or stdin when no file
// is given. Baselines are the per-PR BENCH_N.json reports already
// committed at the repo root: each "benchmarks" entry's "after" block
// carries the reference ns_op / b_op / allocs_op; when several baseline
// files track the same benchmark, the highest-numbered (most recent)
// file wins. Benchmarks present in the output but in no baseline — or
// vice versa — are reported and skipped, never failed: the tracked set
// is exactly the intersection.
//
// Allocation metrics (allocs/op, B/op) are deterministic across
// machines, so they get the tight default threshold. Wall-clock ns/op
// varies with the host CPU; -ns-threshold loosens only that metric
// (zero means "use -threshold", a negative value skips ns comparison
// entirely).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// baselineEntry is the reference measurement of one benchmark.
type baselineEntry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// baselineFile is the subset of a BENCH_N.json report benchdiff reads.
type baselineFile struct {
	Benchmarks map[string]struct {
		After *baselineEntry `json:"after"`
	} `json:"benchmarks"`
}

// measurement is one parsed `go test -bench -benchmem` result line.
type measurement struct {
	NsOp     float64
	BOp      float64
	AllocsOp float64
}

// benchLine matches e.g.
//
//	BenchmarkFoo/sub=1-4  100  12345 ns/op  678 B/op  9 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped so names match the
// baseline keys.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	pattern := fs.String("baseline", "BENCH_*.json", "glob of committed baseline reports")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional regression for B/op and allocs/op")
	nsThreshold := fs.Float64("ns-threshold", 0, "allowed fractional regression for ns/op (0 = -threshold, negative skips ns)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nsTol := *nsThreshold
	if nsTol == 0 {
		nsTol = *threshold
	}

	baseline, err := loadBaselines(*pattern)
	if err != nil {
		return err
	}
	if len(baseline) == 0 {
		return fmt.Errorf("no baseline benchmarks found under %q", *pattern)
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	compared := 0
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(stdout, "SKIP %s: not in any baseline\n", name)
			continue
		}
		got := measured[name]
		compared++
		check := func(metric string, gotV, baseV, tol float64) {
			if baseV <= 0 || tol < 0 {
				return // untracked metric (e.g. 0 allocs) or skipped
			}
			ratio := gotV/baseV - 1
			status := "ok"
			if ratio > tol {
				status = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s %s: %.0f vs baseline %.0f (+%.0f%%, limit +%.0f%%)",
					name, metric, gotV, baseV, ratio*100, tol*100))
			}
			fmt.Fprintf(stdout, "%-10s %s %s: %.0f vs %.0f (%+.1f%%)\n",
				status, name, metric, gotV, baseV, ratio*100)
		}
		check("ns/op", got.NsOp, base.NsOp, nsTol)
		check("B/op", got.BOp, base.BOp, *threshold)
		check("allocs/op", got.AllocsOp, base.AllocsOp, *threshold)
	}
	if compared == 0 {
		return fmt.Errorf("no measured benchmark matched a baseline entry")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL", f)
		}
		return fmt.Errorf("%d benchmark metric(s) regressed past the threshold", len(failures))
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) within thresholds\n", compared)
	return nil
}

// loadBaselines merges all matching baseline files; files sort
// lexically and later (higher-numbered) files win per benchmark.
func loadBaselines(pattern string) (map[string]baselineEntry, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]baselineEntry)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for name, b := range bf.Benchmarks {
			if b.After == nil {
				continue // benchmark retired in this report
			}
			out[name] = *b.After
		}
	}
	return out, nil
}

// parseBench extracts measurements from `go test -bench` output. A
// benchmark appearing more than once keeps its best (minimum) ns/op —
// the conventional stance that noise only ever slows a run down.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := make(map[string]measurement)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		var bop, allocs float64
		if m[3] != "" {
			bop, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			allocs, _ = strconv.ParseFloat(m[4], 64)
		}
		got := measurement{NsOp: ns, BOp: bop, AllocsOp: allocs}
		if prev, ok := out[name]; ok && prev.NsOp <= got.NsOp {
			continue
		}
		out[name] = got
	}
	return out, sc.Err()
}
