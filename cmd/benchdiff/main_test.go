package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "benchmarks": {
    "BenchmarkFast": {"after": {"ns_op": 1000, "b_op": 512, "allocs_op": 8}},
    "BenchmarkSub/workers=2": {"after": {"ns_op": 2000, "b_op": 0, "allocs_op": 0}},
    "BenchmarkRetired": {"before": {"ns_op": 1}, "after": null}
  }
}`

const newerBaselineJSON = `{
  "benchmarks": {
    "BenchmarkFast": {"after": {"ns_op": 1200, "b_op": 512, "allocs_op": 8}}
  }
}`

func writeBaselines(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_3.json"), []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_4.json"), []byte(newerBaselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "BENCH_*.json")
}

func TestWithinThresholdPasses(t *testing.T) {
	glob := writeBaselines(t)
	// 1300 vs the newer baseline 1200: +8%, inside 25%; the -8 suffix is
	// the GOMAXPROCS tag and must strip.
	bench := `goos: linux
BenchmarkFast-8   	1000	1300 ns/op	512 B/op	8 allocs/op
BenchmarkSub/workers=2-8	500	2100 ns/op	0 B/op	0 allocs/op
PASS`
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 benchmark(s) within thresholds") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	glob := writeBaselines(t)
	bench := "BenchmarkFast-8   	1000	9999 ns/op	512 B/op	8 allocs/op\n"
	var out bytes.Buffer
	err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out)
	if err == nil {
		t.Fatalf("ns/op regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output: %s", out.String())
	}
}

func TestAllocRegressionFailsEvenWithLooseNs(t *testing.T) {
	glob := writeBaselines(t)
	bench := "BenchmarkFast-8   	1000	1100 ns/op	512 B/op	80 allocs/op\n"
	var out bytes.Buffer
	err := run([]string{"-baseline", glob, "-ns-threshold", "-1"}, strings.NewReader(bench), &out)
	if err == nil {
		t.Fatalf("allocs/op regression passed:\n%s", out.String())
	}
}

func TestLooseNsThresholdSkipsWallClock(t *testing.T) {
	glob := writeBaselines(t)
	bench := "BenchmarkFast-8   	1000	99999 ns/op	512 B/op	8 allocs/op\n"
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob, "-ns-threshold", "-1"}, strings.NewReader(bench), &out); err != nil {
		t.Fatalf("ns skipped but still failed: %v\n%s", err, out.String())
	}
}

func TestImprovementPasses(t *testing.T) {
	glob := writeBaselines(t)
	bench := "BenchmarkFast-8   	1000	500 ns/op	100 B/op	2 allocs/op\n"
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out); err != nil {
		t.Fatalf("improvement failed: %v\n%s", err, out.String())
	}
}

func TestUntrackedBenchmarkSkips(t *testing.T) {
	glob := writeBaselines(t)
	bench := `BenchmarkFast-8   	1000	1200 ns/op	512 B/op	8 allocs/op
BenchmarkBrandNew-8	100	77 ns/op	0 B/op	0 allocs/op`
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SKIP BenchmarkBrandNew") {
		t.Errorf("untracked benchmark not reported: %s", out.String())
	}
}

func TestBestOfRepeatedRunsWins(t *testing.T) {
	glob := writeBaselines(t)
	bench := `BenchmarkFast-8   	1000	9999 ns/op	512 B/op	8 allocs/op
BenchmarkFast-8   	1000	1100 ns/op	512 B/op	8 allocs/op`
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out); err != nil {
		t.Fatalf("best-of-N not applied: %v\n%s", err, out.String())
	}
}

func TestErrorsOnEmptyInputs(t *testing.T) {
	glob := writeBaselines(t)
	var out bytes.Buffer
	if err := run([]string{"-baseline", glob}, strings.NewReader("no bench lines"), &out); err == nil {
		t.Error("empty bench output accepted")
	}
	if err := run([]string{"-baseline", filepath.Join(t.TempDir(), "none_*.json")},
		strings.NewReader("BenchmarkFast 1 1 ns/op"), &out); err == nil {
		t.Error("missing baselines accepted")
	}
	bench := "BenchmarkBrandNew-8	100	77 ns/op\n"
	if err := run([]string{"-baseline", glob}, strings.NewReader(bench), &out); err == nil {
		t.Error("zero-intersection run accepted")
	}
}

// scalingBench is a three-variant worker family: workers=4 scales
// perfectly (4x), workers=8 hits 5x — above the floor on an 8-core
// host, below it when -cores says only 8 ideal and the floor is high.
const scalingBench = `BenchmarkFast-8   	1000	1100 ns/op	512 B/op	8 allocs/op
BenchmarkPool/workers=1-8	100	8000 ns/op	0 B/op	0 allocs/op
BenchmarkPool/workers=4-8	100	2000 ns/op	0 B/op	0 allocs/op
BenchmarkPool/workers=8-8	100	1600 ns/op	0 B/op	0 allocs/op
`

func TestScalingGatePasses(t *testing.T) {
	glob := writeBaselines(t)
	var out bytes.Buffer
	// workers=4: 4x/4 = 1.00; workers=8: 5x/8 = 0.63. Floor 0.5 passes.
	err := run([]string{"-baseline", glob,
		"-scaling-bench", "BenchmarkPool/workers=",
		"-scaling-floor", "0.5", "-cores", "8"},
		strings.NewReader(scalingBench), &out)
	if err != nil {
		t.Fatalf("healthy scaling failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scaling BenchmarkPool/workers=4: 4.00x") {
		t.Errorf("scaling report missing: %s", out.String())
	}
}

func TestScalingGateFailsBelowFloor(t *testing.T) {
	glob := writeBaselines(t)
	var out bytes.Buffer
	// workers=8 efficiency is 0.63 on 8 cores: a 0.8 floor must fail.
	err := run([]string{"-baseline", glob,
		"-scaling-bench", "BenchmarkPool/workers=",
		"-scaling-floor", "0.8", "-cores", "8"},
		strings.NewReader(scalingBench), &out)
	if err == nil {
		t.Fatalf("sub-floor efficiency passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION scaling BenchmarkPool/workers=8") {
		t.Errorf("workers=8 not flagged: %s", out.String())
	}
}

func TestScalingGateClampsToCores(t *testing.T) {
	glob := writeBaselines(t)
	var out bytes.Buffer
	// On a 4-core host workers=8's ideal is 4, so 5x/4 = 1.25: the same
	// 0.8 floor that fails on 8 cores passes when oversubscribed.
	err := run([]string{"-baseline", glob,
		"-scaling-bench", "BenchmarkPool/workers=",
		"-scaling-floor", "0.8", "-cores", "4"},
		strings.NewReader(scalingBench), &out)
	if err != nil {
		t.Fatalf("core-clamped run failed: %v\n%s", err, out.String())
	}
}

func TestScalingGateRequiresVariants(t *testing.T) {
	glob := writeBaselines(t)
	var out bytes.Buffer
	solo := "BenchmarkFast-8   	1000	1100 ns/op	512 B/op	8 allocs/op\nBenchmarkPool/workers=1-8	100	8000 ns/op\n"
	if err := run([]string{"-baseline", glob,
		"-scaling-bench", "BenchmarkPool/workers=",
		"-scaling-floor", "0.5"},
		strings.NewReader(solo), &out); err == nil {
		t.Error("gate with no multi-worker variants passed silently")
	}
	if err := run([]string{"-baseline", glob, "-scaling-floor", "0.5"},
		strings.NewReader(scalingBench), &out); err == nil {
		t.Error("-scaling-floor without -scaling-bench accepted")
	}
}

// TestBaselineNumericOrder pins the double-digit ordering fix: a
// BENCH_10 report must override BENCH_3's entry for the same
// benchmark even though it sorts first lexically.
func TestBaselineNumericOrder(t *testing.T) {
	dir := t.TempDir()
	old := `{"benchmarks": {"BenchmarkFast": {"after": {"ns_op": 111}}}}`
	newer := `{"benchmarks": {"BenchmarkFast": {"after": {"ns_op": 999}}}}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_3.json"), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_10.json"), []byte(newer), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := loadBaselines(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := entries["BenchmarkFast"].NsOp; got != 999 {
		t.Fatalf("BENCH_10 lost to BENCH_3: baseline ns_op = %v, want 999", got)
	}
}

// TestRealBaselineParses guards the committed repo baselines against
// schema drift: every BENCH_*.json at the repo root must load.
func TestRealBaselineParses(t *testing.T) {
	entries, err := loadBaselines(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no benchmarks parsed from committed baselines")
	}
	if _, ok := entries["BenchmarkTrajectoryPlanShot"]; !ok {
		t.Error("BenchmarkTrajectoryPlanShot missing from committed baselines")
	}
}
