package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quditkit/internal/core"
	"quditkit/internal/experiment"
	"quditkit/internal/serve"
)

const ghzSpec = `{"dims": [3,3,3], "ops": [
  {"gate": "dft",  "targets": [0]},
  {"gate": "csum", "targets": [0,1]},
  {"gate": "csum", "targets": [0,2]}]}`

func TestTranspileListing(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"passes:", "decompose", "depth:", "fidelity budget:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTranspileJSONLevel2(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "2", "-json"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Level != "noise" {
		t.Errorf("level = %q, want noise", rep.Level)
	}
	if rep.Noise == nil || rep.Noise.Damping <= 0 {
		t.Errorf("expected device-derived noise, got %+v", rep.Noise)
	}
	if rep.PhysicalOps <= rep.LogicalOps {
		t.Errorf("decomposition did not expand ops: %d -> %d", rep.LogicalOps, rep.PhysicalOps)
	}
	if len(rep.Ops) != rep.PhysicalOps {
		t.Errorf("ops dump has %d entries, report says %d", len(rep.Ops), rep.PhysicalOps)
	}
}

func TestTranspileDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("repeated transpile runs differ")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"transpile"}, strings.NewReader("{not json"), &out); err == nil {
		t.Error("invalid JSON accepted")
	}
	if err := run([]string{"transpile", "-level", "9"}, strings.NewReader(ghzSpec), &out); err == nil {
		t.Error("undefined level accepted")
	}
}

// newJobServer boots an in-process quditd service for the client
// subcommands to talk to.
func newJobServer(t *testing.T) *httptest.Server {
	t.Helper()
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(proc, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

const jobSpec = `{"circuit": ` + ghzSpec + `, "shots": 64}`

func TestSubmitAndWatch(t *testing.T) {
	ts := newJobServer(t)

	// Plain submit returns the job view.
	var out bytes.Buffer
	if err := run([]string{"submit", "-addr", ts.URL}, strings.NewReader(jobSpec), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "job j-") {
		t.Fatalf("submit output %q", out.String())
	}

	// submit -watch streams transitions to settlement.
	out.Reset()
	if err := run([]string{"submit", "-addr", ts.URL, "-watch"}, strings.NewReader(jobSpec), &out); err != nil {
		t.Fatalf("watch failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("watch output lacks terminal state:\n%s", out.String())
	}

	// watch re-attaches to the settled job and replays to the terminal
	// event; -json emits raw event objects.
	id := strings.Fields(strings.TrimSpace(out.String()))[0]
	out.Reset()
	if err := run([]string{"watch", "-addr", ts.URL, "-json", id}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("re-watch failed: %v\n%s", err, out.String())
	}
	var ev serve.Event
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil || ev.State != "done" {
		t.Fatalf("last watch event %q err %v", lines[len(lines)-1], err)
	}
}

func TestWatchErrors(t *testing.T) {
	ts := newJobServer(t)
	var out bytes.Buffer
	if err := run([]string{"watch", "-addr", ts.URL, "j-999999"}, strings.NewReader(""), &out); err == nil {
		t.Error("watching an unknown job succeeded")
	}
	if err := run([]string{"watch", "-addr", ts.URL}, strings.NewReader(""), &out); err == nil {
		t.Error("watch without a job id succeeded")
	}
	if err := run([]string{"submit", "-addr", ts.URL}, strings.NewReader(`{"circuit":{"dims":[3],"ops":[{"gate":"nope","targets":[0]}]}}`), &out); err == nil {
		t.Error("submitting an invalid job succeeded")
	}
}

// newSweepServer boots the full standalone sweep stack (job service +
// experiment manager) for the sweep subcommand to talk to.
func newSweepServer(t *testing.T) *httptest.Server {
	t.Helper()
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(proc, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := experiment.NewManager(experiment.ServeRunner{Service: svc}, experiment.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(experiment.NewHandler(mgr, serve.NewHandler(svc)))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
		svc.Close()
	})
	return ts
}

const sweepSpec = `{"kind": "rb", "shots": 32, "seed": 5,
  "rb": {"dim": 3, "lengths": [1, 2], "sequences": 2}}`

func TestSweepSubmitAndWatch(t *testing.T) {
	ts := newSweepServer(t)

	// Plain submit prints the accepted view and returns immediately.
	var out bytes.Buffer
	if err := run([]string{"sweep", "-addr", ts.URL}, strings.NewReader(sweepSpec), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sweep s-") || !strings.Contains(out.String(), "4 cells") {
		t.Fatalf("sweep output %q", out.String())
	}

	// -watch streams cell settlements and the aggregate summary.
	out.Reset()
	if err := run([]string{"sweep", "-addr", ts.URL, "-watch"}, strings.NewReader(sweepSpec), &out); err != nil {
		t.Fatalf("sweep -watch: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"cell", "completed: 4 done", "decay_rate="} {
		if !strings.Contains(s, want) {
			t.Errorf("watch output missing %q:\n%s", want, s)
		}
	}
	// Every cell of the resubmission settles from the result cache.
	if !strings.Contains(s, "(4 cached)") {
		t.Errorf("resubmitted sweep not fully cached:\n%s", s)
	}

	// -json emits raw event objects; the last is the terminal sweep
	// event carrying the aggregate.
	out.Reset()
	if err := run([]string{"sweep", "-addr", ts.URL, "-watch", "-json"}, strings.NewReader(sweepSpec), &out); err != nil {
		t.Fatalf("sweep -watch -json: %v\n%s", err, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var ev experiment.SweepEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil {
		t.Fatalf("last event %q: %v", lines[len(lines)-1], err)
	}
	if ev.State != experiment.SweepCompleted || ev.Sweep == nil || ev.Sweep.Aggregate == nil {
		t.Fatalf("terminal event %+v", ev)
	}
}

func TestSweepErrors(t *testing.T) {
	ts := newSweepServer(t)
	var out bytes.Buffer
	if err := run([]string{"sweep", "-addr", ts.URL}, strings.NewReader(`{"kind":"rb"}`), &out); err == nil {
		t.Error("invalid sweep accepted")
	}
	if err := run([]string{"sweep", "-addr", ts.URL, "/does/not/exist.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing request file accepted")
	}
	if err := run([]string{"sweep", "-addr", "http://127.0.0.1:1"}, strings.NewReader(sweepSpec), &out); err == nil {
		t.Error("unreachable server accepted")
	}
	if err := watchSweep(ts.URL, "", "s-999999", false, 0, &out); err == nil {
		t.Error("watching an unknown sweep succeeded")
	}
}

// TestStreamSSEReconnect drops the first connection mid-stream; the
// client must reconnect with Last-Event-ID and resume where it left
// off without replaying event 0.
func TestStreamSSEReconnect(t *testing.T) {
	var conns atomic.Int32
	var gotLastID atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			// First connection: one event, then drop.
			fmt.Fprintf(w, "id: 0\nevent: cell\ndata: {\"seq\":0}\n\n")
			return
		}
		gotLastID.Store(r.Header.Get("Last-Event-ID"))
		fmt.Fprintf(w, "id: 1\nevent: sweep\ndata: {\"seq\":1}\n\n")
	}))
	defer srv.Close()

	var seqs []int
	err := streamSSE(srv.URL, "", 30*time.Second, func(event, data string) bool {
		var ev struct {
			Seq int `json:"seq"`
		}
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad data %q: %v", data, err)
		}
		seqs = append(seqs, ev.Seq)
		return event == "sweep"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("events %v, want [0 1]", seqs)
	}
	if got := gotLastID.Load(); got != "0" {
		t.Fatalf("reconnect sent Last-Event-ID %v, want 0", got)
	}
}

// TestStreamSSESurvivesRestart kills the serving process's listener
// entirely — reconnects are refused, not merely dropped — then brings a
// new server up on the same port, exactly what a journaled quditd
// restart looks like from the client side. The watch must ride out the
// outage with backoff and resume via Last-Event-ID instead of failing.
func TestStreamSSESurvivesRestart(t *testing.T) {
	var conns atomic.Int32
	firstServed := make(chan struct{})
	var once sync.Once
	srv1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if conns.Add(1) > 1 {
			// Pre-restart retries: abort without a response so the
			// client keeps treating the stream as dropped.
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "id: 0\nevent: cell\ndata: {\"seq\":0}\n\n")
		once.Do(func() { close(firstServed) })
	}))
	addr := srv1.Listener.Addr().String()
	url := srv1.URL

	var mu sync.Mutex
	var seqs []int
	done := make(chan error, 1)
	go func() {
		done <- streamSSE(url, "", 30*time.Second, func(event, data string) bool {
			var ev struct {
				Seq int `json:"seq"`
			}
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Errorf("bad data %q: %v", data, err)
			}
			mu.Lock()
			seqs = append(seqs, ev.Seq)
			mu.Unlock()
			return event == "sweep"
		})
	}()

	<-firstServed
	srv1.Close()
	// Leave the port dark long enough for at least one refused
	// reconnect before the "restarted daemon" comes back.
	time.Sleep(600 * time.Millisecond)

	var gotLastID atomic.Value
	srv2 := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLastID.Store(r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "id: 1\nevent: sweep\ndata: {\"seq\":1}\n\n")
	}))
	srv2.Listener.Close()
	var (
		ln  net.Listener
		err error
	)
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2.Listener = ln
	srv2.Start()
	defer srv2.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch did not survive the restart: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch hung across the restart")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 1 {
		t.Fatalf("events %v, want [0 1]", seqs)
	}
	if got := gotLastID.Load(); got != "0" {
		t.Fatalf("resume sent Last-Event-ID %v, want 0", got)
	}
}

// TestStreamSSETimeout bounds a stream that never reaches its terminal
// event.
func TestStreamSSETimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "id: 0\nevent: cell\ndata: {\"seq\":0}\n\n")
		// Never send the terminal event; the deadline must fire.
	}))
	defer srv.Close()
	err := streamSSE(srv.URL, "", 300*time.Millisecond, func(event, data string) bool { return false })
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
}

// TestPrintAggregate renders every kind's summary line.
func TestPrintAggregate(t *testing.T) {
	metric := 0.5
	cases := []struct {
		agg  experiment.Aggregate
		want string
	}{
		{experiment.Aggregate{RB: &experiment.RBAggregate{DecayRate: 0.9}}, "decay_rate=0.9"},
		{experiment.Aggregate{QAOA: &experiment.QAOAAggregate{BestRatio: 0.7}}, "best_ratio=0.7"},
		{experiment.Aggregate{SQED: &experiment.SQEDAggregate{Omega: 1.2}}, "omega=1.2"},
		{experiment.Aggregate{SQED: &experiment.SQEDAggregate{FitError: "flat"}}, "fit failed: flat"},
		{experiment.Aggregate{QRC: &experiment.QRCAggregate{EvalNMSE: 0.3}}, "eval_nmse=0.3"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		agg := c.agg
		printAggregate(&out, "s-000001", &experiment.SweepView{
			State: experiment.SweepCompleted, Aggregate: &agg, AggregateError: "partial",
		})
		if !strings.Contains(out.String(), c.want) {
			t.Errorf("aggregate output missing %q:\n%s", c.want, out.String())
		}
	}
	// Cells without an aggregate still render.
	var out bytes.Buffer
	printCell(&out, "s-000001", 1, &experiment.CellView{Index: 0, State: "done", Metric: &metric, Cached: true})
	printCell(&out, "s-000001", 2, &experiment.CellView{Index: 1, State: "failed", Error: "boom"})
	printCell(&out, "s-000001", 3, &experiment.CellView{Index: 2, State: "cancelled"})
	for _, want := range []string{"metric=0.5", "(cached)", "failed: boom", "cancelled"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("cell output missing %q:\n%s", want, out.String())
		}
	}
}
