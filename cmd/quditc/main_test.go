package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"quditkit/internal/core"
	"quditkit/internal/serve"
)

const ghzSpec = `{"dims": [3,3,3], "ops": [
  {"gate": "dft",  "targets": [0]},
  {"gate": "csum", "targets": [0,1]},
  {"gate": "csum", "targets": [0,2]}]}`

func TestTranspileListing(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"passes:", "decompose", "depth:", "fidelity budget:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTranspileJSONLevel2(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "2", "-json"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Level != "noise" {
		t.Errorf("level = %q, want noise", rep.Level)
	}
	if rep.Noise == nil || rep.Noise.Damping <= 0 {
		t.Errorf("expected device-derived noise, got %+v", rep.Noise)
	}
	if rep.PhysicalOps <= rep.LogicalOps {
		t.Errorf("decomposition did not expand ops: %d -> %d", rep.LogicalOps, rep.PhysicalOps)
	}
	if len(rep.Ops) != rep.PhysicalOps {
		t.Errorf("ops dump has %d entries, report says %d", len(rep.Ops), rep.PhysicalOps)
	}
}

func TestTranspileDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("repeated transpile runs differ")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"transpile"}, strings.NewReader("{not json"), &out); err == nil {
		t.Error("invalid JSON accepted")
	}
	if err := run([]string{"transpile", "-level", "9"}, strings.NewReader(ghzSpec), &out); err == nil {
		t.Error("undefined level accepted")
	}
}

// newJobServer boots an in-process quditd service for the client
// subcommands to talk to.
func newJobServer(t *testing.T) *httptest.Server {
	t.Helper()
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := serve.New(proc, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

const jobSpec = `{"circuit": ` + ghzSpec + `, "shots": 64}`

func TestSubmitAndWatch(t *testing.T) {
	ts := newJobServer(t)

	// Plain submit returns the job view.
	var out bytes.Buffer
	if err := run([]string{"submit", "-addr", ts.URL}, strings.NewReader(jobSpec), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "job j-") {
		t.Fatalf("submit output %q", out.String())
	}

	// submit -watch streams transitions to settlement.
	out.Reset()
	if err := run([]string{"submit", "-addr", ts.URL, "-watch"}, strings.NewReader(jobSpec), &out); err != nil {
		t.Fatalf("watch failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("watch output lacks terminal state:\n%s", out.String())
	}

	// watch re-attaches to the settled job and replays to the terminal
	// event; -json emits raw event objects.
	id := strings.Fields(strings.TrimSpace(out.String()))[0]
	out.Reset()
	if err := run([]string{"watch", "-addr", ts.URL, "-json", id}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("re-watch failed: %v\n%s", err, out.String())
	}
	var ev serve.Event
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil || ev.State != "done" {
		t.Fatalf("last watch event %q err %v", lines[len(lines)-1], err)
	}
}

func TestWatchErrors(t *testing.T) {
	ts := newJobServer(t)
	var out bytes.Buffer
	if err := run([]string{"watch", "-addr", ts.URL, "j-999999"}, strings.NewReader(""), &out); err == nil {
		t.Error("watching an unknown job succeeded")
	}
	if err := run([]string{"watch", "-addr", ts.URL}, strings.NewReader(""), &out); err == nil {
		t.Error("watch without a job id succeeded")
	}
	if err := run([]string{"submit", "-addr", ts.URL}, strings.NewReader(`{"circuit":{"dims":[3],"ops":[{"gate":"nope","targets":[0]}]}}`), &out); err == nil {
		t.Error("submitting an invalid job succeeded")
	}
}
