package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const ghzSpec = `{"dims": [3,3,3], "ops": [
  {"gate": "dft",  "targets": [0]},
  {"gate": "csum", "targets": [0,1]},
  {"gate": "csum", "targets": [0,2]}]}`

func TestTranspileListing(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"passes:", "decompose", "depth:", "fidelity budget:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestTranspileJSONLevel2(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"transpile", "-level", "2", "-json"}, strings.NewReader(ghzSpec), &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Level != "noise" {
		t.Errorf("level = %q, want noise", rep.Level)
	}
	if rep.Noise == nil || rep.Noise.Damping <= 0 {
		t.Errorf("expected device-derived noise, got %+v", rep.Noise)
	}
	if rep.PhysicalOps <= rep.LogicalOps {
		t.Errorf("decomposition did not expand ops: %d -> %d", rep.LogicalOps, rep.PhysicalOps)
	}
	if len(rep.Ops) != rep.PhysicalOps {
		t.Errorf("ops dump has %d entries, report says %d", len(rep.Ops), rep.PhysicalOps)
	}
}

func TestTranspileDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"transpile", "-level", "1"}, strings.NewReader(ghzSpec), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("repeated transpile runs differ")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"transpile"}, strings.NewReader("{not json"), &out); err == nil {
		t.Error("invalid JSON accepted")
	}
	if err := run([]string{"transpile", "-level", "9"}, strings.NewReader(ghzSpec), &out); err == nil {
		t.Error("undefined level accepted")
	}
}
