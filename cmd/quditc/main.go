// Command quditc is the quditkit client tool: a compiler front end and
// a job-service client in one binary.
//
// The transpile subcommand lowers a wire-format circuit onto a
// forecast device through the transpile pipeline — exactly as quditd
// would for a job carrying the same "device" stanza — and prints the
// physical circuit with its cost report, without executing anything:
//
//	quditc transpile [-cavities N] [-modes M] [-level 0|1|2] [-seed S]
//	                 [-json] [circuit.json]
//
// The submit subcommand posts a full JobRequest (the POST /v1/jobs
// body: circuit plus backend/shots/noise/device stanzas) to a quditd
// node or cluster coordinator, and the watch subcommand attaches to a
// job's Server-Sent-Events stream, printing each state transition as
// it happens instead of long-polling:
//
//	quditc submit [-addr URL] [-watch] [-json] [job.json]
//	quditc watch  [-addr URL] [-json] <job-id>
//
// With -watch, submit streams the new job's events until it settles
// and exits non-zero if the terminal state is not "done". Input is
// read from the named file, or stdin when no file is given.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"quditkit/internal/core"
	"quditkit/internal/serve"
	"quditkit/internal/transpile"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quditc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: quditc transpile|submit|watch [flags] [input]")
	}
	switch args[0] {
	case "transpile":
		return runTranspile(args[1:], stdin, stdout)
	case "submit":
		return runSubmit(args[1:], stdin, stdout)
	case "watch":
		return runWatch(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (have: transpile, submit, watch)", args[0])
	}
}

// runSubmit posts one JobRequest and either prints the returned view
// or (with -watch) follows the job's event stream to settlement.
func runSubmit(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "quditd or coordinator base URL")
	watch := fs.Bool("watch", false, "stream the job's events until it settles")
	asJSON := fs.Bool("json", false, "print raw JSON instead of the human summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	body, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimSuffix(*addr, "/")+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit returned %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var view serve.JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if !*watch {
		if *asJSON {
			fmt.Fprintln(stdout, string(raw))
		} else {
			fmt.Fprintf(stdout, "job %s: %s\n", view.ID, view.State)
		}
		return nil
	}
	return watchJob(*addr, view.ID, *asJSON, stdout)
}

// runWatch attaches to an existing job's event stream.
func runWatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "quditd or coordinator base URL")
	asJSON := fs.Bool("json", false, "print raw event JSON instead of the human summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: quditc watch [-addr URL] [-json] <job-id>")
	}
	return watchJob(*addr, fs.Arg(0), *asJSON, stdout)
}

// watchJob consumes the SSE stream of one job until its terminal
// event, printing each transition. It returns an error when the job
// settles anywhere but "done", so scripts can gate on the exit code.
func watchJob(addr, id string, asJSON bool, stdout io.Writer) error {
	url := strings.TrimSuffix(addr, "/") + "/v1/jobs/" + id + "/events"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("events returned %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var final string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	eventName := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			eventName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if asJSON {
				fmt.Fprintln(stdout, data)
			}
			var ev serve.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				continue
			}
			if eventName == "requeued" {
				if !asJSON {
					fmt.Fprintf(stdout, "%s  %s\n", id, "requeued onto another worker")
				}
				continue
			}
			if !asJSON {
				printEvent(stdout, id, ev)
			}
			switch ev.State {
			case "done", "failed", "cancelled":
				final = ev.State
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if final == "" {
		return fmt.Errorf("event stream for %s ended before the job settled", id)
	}
	if final != "done" {
		return fmt.Errorf("job %s settled %s", id, final)
	}
	return nil
}

// printEvent renders one transition for the human-readable stream.
func printEvent(stdout io.Writer, id string, ev serve.Event) {
	switch {
	case ev.State == "done" && ev.Result != nil:
		cached := ""
		if ev.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(stdout, "%s  done%s: backend=%s seed=%d shots=%d counts=%d\n",
			id, cached, ev.Result.Backend, ev.Result.Seed, ev.Result.Shots, len(ev.Result.Counts))
	case ev.Error != "":
		fmt.Fprintf(stdout, "%s  %s: %s\n", id, ev.State, ev.Error)
	default:
		fmt.Fprintf(stdout, "%s  %s\n", id, ev.State)
	}
}

// jsonReport is the machine-readable projection of a transpile run.
type jsonReport struct {
	Level         string           `json:"level"`
	Passes        []string         `json:"passes"`
	LogicalOps    int              `json:"logical_ops"`
	PhysicalOps   int              `json:"physical_ops"`
	Mapping       []int            `json:"mapping"`
	FinalLayout   []int            `json:"final_layout"`
	SwapsInserted int              `json:"swaps_inserted"`
	OneQuditGates int              `json:"one_qudit_gates"`
	TwoQuditGates int              `json:"two_qudit_gates"`
	DepthBefore   int              `json:"depth_before"`
	DepthAfter    int              `json:"depth_after"`
	DurationSec   float64          `json:"duration_sec"`
	Fidelity      float64          `json:"fidelity_estimate"`
	Noise         *serve.NoiseSpec `json:"noise,omitempty"`
	Ops           []serveOpDump    `json:"ops"`
}

// serveOpDump is one physical op in the JSON dump.
type serveOpDump struct {
	Gate    string `json:"gate"`
	Targets []int  `json:"targets"`
}

func runTranspile(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc transpile", flag.ContinueOnError)
	cavities := fs.Int("cavities", 2, "forecast cavities in the target chain")
	modes := fs.Int("modes", 2, "modes per cavity (0 = full forecast module)")
	level := fs.Int("level", int(transpile.LevelNative), "transpile level: 0 route, 1 +native decomposition, 2 +device noise")
	seed := fs.Int64("seed", 0, "placement seed (0 = derive from the circuit, like an unseeded submission)")
	asJSON := fs.Bool("json", false, "emit a JSON report instead of the listing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var spec serve.CircuitSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return fmt.Errorf("decoding circuit: %w", err)
	}
	logical, err := serve.BuildCircuit(spec)
	if err != nil {
		return err
	}
	lvl, err := transpile.ParseLevel(*level)
	if err != nil {
		return err
	}

	// The processor seed only matters for unseeded placement derivation;
	// 1 matches quditd's default.
	proc, err := core.NewCompactProcessor(*cavities, *modes, 1)
	if err != nil {
		return err
	}
	opts := []core.RunOption{core.WithTranspile(lvl)}
	if *seed != 0 {
		opts = append(opts, core.WithSeed(*seed))
	}
	res, err := proc.Transpile(logical, opts...)
	if err != nil {
		return err
	}

	if *asJSON {
		rep := jsonReport{
			Level:         lvl.String(),
			Passes:        res.Passes,
			LogicalOps:    logical.Len(),
			PhysicalOps:   res.Physical.Len(),
			Mapping:       res.Mapping.LogicalToMode,
			FinalLayout:   res.Report.FinalLayout,
			SwapsInserted: res.Report.SwapsInserted,
			OneQuditGates: res.Report.OneQuditGates,
			TwoQuditGates: res.Report.TwoQuditGates,
			DepthBefore:   res.Report.DepthBefore,
			DepthAfter:    res.Report.DepthAfter,
			DurationSec:   res.Report.DurationSec,
			Fidelity:      res.Report.FidelityEstimate,
		}
		if res.Noise != nil {
			rep.Noise = serve.NoiseSpecFrom(*res.Noise)
		}
		for _, op := range res.Physical.Ops() {
			rep.Ops = append(rep.Ops, serveOpDump{Gate: op.Gate.Name, Targets: op.Targets})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(stdout, "target: %d cavities x %d modes, transpile level %d (%s)\n",
		*cavities, *modes, int(lvl), lvl)
	fmt.Fprintf(stdout, "passes: %v\n", res.Passes)
	fmt.Fprintf(stdout, "ops: %d logical -> %d physical (%d 1q, %d 2q, %d swaps)\n",
		logical.Len(), res.Physical.Len(),
		res.Report.OneQuditGates, res.Report.TwoQuditGates, res.Report.SwapsInserted)
	fmt.Fprintf(stdout, "depth: %d -> %d\n", res.Report.DepthBefore, res.Report.DepthAfter)
	fmt.Fprintf(stdout, "placement: %v  final layout: %v\n",
		res.Mapping.LogicalToMode, res.Report.FinalLayout)
	fmt.Fprintf(stdout, "duration: %.1f us   fidelity budget: %.4f\n",
		res.Report.DurationSec*1e6, res.Report.FidelityEstimate)
	if res.Noise != nil {
		fmt.Fprintf(stdout, "device noise: depol1=%.2e depol2=%.2e damping=%.2e dephasing=%.2e idle=(%.2e,%.2e)\n",
			res.Noise.Depol1, res.Noise.Depol2, res.Noise.Damping, res.Noise.Dephasing,
			res.Noise.IdleDamping, res.Noise.IdleDephasing)
	}
	fmt.Fprintf(stdout, "\n%s", res.Physical.String())
	return nil
}
