// Command quditc is the quditkit client-side compiler tool. Its
// transpile subcommand lowers a wire-format circuit onto a forecast
// device through the transpile pipeline — exactly as quditd would for a
// job carrying the same "device" stanza — and prints the physical
// circuit with its cost report, without executing anything.
//
// Usage:
//
//	quditc transpile [-cavities N] [-modes M] [-level 0|1|2] [-seed S]
//	                 [-json] [circuit.json]
//
// The circuit is read from the named file, or stdin when no file is
// given, in the same JSON wire format POST /v1/jobs accepts:
//
//	{"dims": [3,3,3], "ops": [
//	  {"gate": "dft",  "targets": [0]},
//	  {"gate": "csum", "targets": [0,1]},
//	  {"gate": "csum", "targets": [0,2]}]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"quditkit/internal/core"
	"quditkit/internal/serve"
	"quditkit/internal/transpile"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quditc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: quditc transpile [flags] [circuit.json]")
	}
	switch args[0] {
	case "transpile":
		return runTranspile(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (have: transpile)", args[0])
	}
}

// jsonReport is the machine-readable projection of a transpile run.
type jsonReport struct {
	Level         string           `json:"level"`
	Passes        []string         `json:"passes"`
	LogicalOps    int              `json:"logical_ops"`
	PhysicalOps   int              `json:"physical_ops"`
	Mapping       []int            `json:"mapping"`
	FinalLayout   []int            `json:"final_layout"`
	SwapsInserted int              `json:"swaps_inserted"`
	OneQuditGates int              `json:"one_qudit_gates"`
	TwoQuditGates int              `json:"two_qudit_gates"`
	DepthBefore   int              `json:"depth_before"`
	DepthAfter    int              `json:"depth_after"`
	DurationSec   float64          `json:"duration_sec"`
	Fidelity      float64          `json:"fidelity_estimate"`
	Noise         *serve.NoiseSpec `json:"noise,omitempty"`
	Ops           []serveOpDump    `json:"ops"`
}

// serveOpDump is one physical op in the JSON dump.
type serveOpDump struct {
	Gate    string `json:"gate"`
	Targets []int  `json:"targets"`
}

func runTranspile(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc transpile", flag.ContinueOnError)
	cavities := fs.Int("cavities", 2, "forecast cavities in the target chain")
	modes := fs.Int("modes", 2, "modes per cavity (0 = full forecast module)")
	level := fs.Int("level", int(transpile.LevelNative), "transpile level: 0 route, 1 +native decomposition, 2 +device noise")
	seed := fs.Int64("seed", 0, "placement seed (0 = derive from the circuit, like an unseeded submission)")
	asJSON := fs.Bool("json", false, "emit a JSON report instead of the listing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var spec serve.CircuitSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return fmt.Errorf("decoding circuit: %w", err)
	}
	logical, err := serve.BuildCircuit(spec)
	if err != nil {
		return err
	}
	lvl, err := transpile.ParseLevel(*level)
	if err != nil {
		return err
	}

	// The processor seed only matters for unseeded placement derivation;
	// 1 matches quditd's default.
	proc, err := core.NewCompactProcessor(*cavities, *modes, 1)
	if err != nil {
		return err
	}
	opts := []core.RunOption{core.WithTranspile(lvl)}
	if *seed != 0 {
		opts = append(opts, core.WithSeed(*seed))
	}
	res, err := proc.Transpile(logical, opts...)
	if err != nil {
		return err
	}

	if *asJSON {
		rep := jsonReport{
			Level:         lvl.String(),
			Passes:        res.Passes,
			LogicalOps:    logical.Len(),
			PhysicalOps:   res.Physical.Len(),
			Mapping:       res.Mapping.LogicalToMode,
			FinalLayout:   res.Report.FinalLayout,
			SwapsInserted: res.Report.SwapsInserted,
			OneQuditGates: res.Report.OneQuditGates,
			TwoQuditGates: res.Report.TwoQuditGates,
			DepthBefore:   res.Report.DepthBefore,
			DepthAfter:    res.Report.DepthAfter,
			DurationSec:   res.Report.DurationSec,
			Fidelity:      res.Report.FidelityEstimate,
		}
		if res.Noise != nil {
			rep.Noise = serve.NoiseSpecFrom(*res.Noise)
		}
		for _, op := range res.Physical.Ops() {
			rep.Ops = append(rep.Ops, serveOpDump{Gate: op.Gate.Name, Targets: op.Targets})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(stdout, "target: %d cavities x %d modes, transpile level %d (%s)\n",
		*cavities, *modes, int(lvl), lvl)
	fmt.Fprintf(stdout, "passes: %v\n", res.Passes)
	fmt.Fprintf(stdout, "ops: %d logical -> %d physical (%d 1q, %d 2q, %d swaps)\n",
		logical.Len(), res.Physical.Len(),
		res.Report.OneQuditGates, res.Report.TwoQuditGates, res.Report.SwapsInserted)
	fmt.Fprintf(stdout, "depth: %d -> %d\n", res.Report.DepthBefore, res.Report.DepthAfter)
	fmt.Fprintf(stdout, "placement: %v  final layout: %v\n",
		res.Mapping.LogicalToMode, res.Report.FinalLayout)
	fmt.Fprintf(stdout, "duration: %.1f us   fidelity budget: %.4f\n",
		res.Report.DurationSec*1e6, res.Report.FidelityEstimate)
	if res.Noise != nil {
		fmt.Fprintf(stdout, "device noise: depol1=%.2e depol2=%.2e damping=%.2e dephasing=%.2e idle=(%.2e,%.2e)\n",
			res.Noise.Depol1, res.Noise.Depol2, res.Noise.Damping, res.Noise.Dephasing,
			res.Noise.IdleDamping, res.Noise.IdleDephasing)
	}
	fmt.Fprintf(stdout, "\n%s", res.Physical.String())
	return nil
}
