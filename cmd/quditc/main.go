// Command quditc is the quditkit client tool: a compiler front end and
// a job-service client in one binary.
//
// The transpile subcommand lowers a wire-format circuit onto a
// forecast device through the transpile pipeline — exactly as quditd
// would for a job carrying the same "device" stanza — and prints the
// physical circuit with its cost report, without executing anything:
//
//	quditc transpile [-cavities N] [-modes M] [-level 0|1|2] [-seed S]
//	                 [-json] [circuit.json]
//
// The submit subcommand posts a full JobRequest (the POST /v1/jobs
// body: circuit plus backend/shots/noise/device stanzas) to a quditd
// node or cluster coordinator, and the watch subcommand attaches to a
// job's Server-Sent-Events stream, printing each state transition as
// it happens instead of long-polling:
//
//	quditc submit [-addr URL] [-watch] [-json] [-timeout D] [job.json]
//	quditc watch  [-addr URL] [-json] [-timeout D] <job-id>
//
// With -watch, submit streams the new job's events until it settles
// and exits non-zero if the terminal state is not "done". Input is
// read from the named file, or stdin when no file is given.
//
// The sweep subcommand posts a SweepRequest (the POST /v1/sweeps body:
// kind, shots, seed, and one of the rb/qaoa/sqed/qrc grid specs) and,
// with -watch, streams per-cell settlements and the final server-side
// aggregate:
//
//	quditc sweep [-addr URL] [-watch] [-json] [-timeout D] [sweep.json]
//
// Every subcommand accepts -api-key (default: the QUDITC_API_KEY
// environment variable), sent as the X-API-Key header to a quditd
// running with -tenants; transpile accepts it for flag-set uniformity
// but runs locally and never sends it. Server errors arrive as the
// structured envelope {"error":{"code","message","retry_after_ms"}}
// and print as "code: message"; the exit code distinguishes failure
// classes so scripts can branch without parsing text: 2 for
// quota_exceeded, 3 for transient errors (queue_full, unavailable,
// timeout, upstream_error), 1 for everything else.
//
// Every watch survives dropped connections — and daemon restarts: the
// client retries refused reconnects with exponential backoff and
// resumes with the standard Last-Event-ID header, so a quditd running
// with -journal can crash and come back mid-watch without the client
// noticing more than a pause. Against a daemon without a journal a
// restart forgets the ID, and the watch ends with a "stream lost"
// error rather than hanging. -timeout bounds the total watch across
// reconnects (0 waits forever).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"quditkit/internal/core"
	"quditkit/internal/experiment"
	"quditkit/internal/httpapi"
	"quditkit/internal/serve"
	"quditkit/internal/transpile"
)

// Exit codes: scripts branch on these, not on stderr text.
const (
	exitGeneric   = 1 // malformed input, not found, internal errors, ...
	exitQuota     = 2 // quota_exceeded: the tenant is over a configured limit
	exitTransient = 3 // queue_full, unavailable, timeout, upstream_error: retry later
)

// exitError tags an error with the process exit code it should
// produce, so main can distinguish quota breaches from transient
// backpressure without re-parsing messages.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quditc:", err)
		var ee *exitError
		if errors.As(err, &ee) {
			os.Exit(ee.code)
		}
		os.Exit(exitGeneric)
	}
}

// apiKeyFlag registers the common -api-key flag, defaulting to the
// QUDITC_API_KEY environment variable so CI jobs can set the key once.
func apiKeyFlag(fs *flag.FlagSet) *string {
	return fs.String("api-key", os.Getenv("QUDITC_API_KEY"),
		"tenant API key sent as X-API-Key (default: $QUDITC_API_KEY)")
}

// apiError converts a non-2xx response body into an error. Envelope
// bodies render as "code: message" with the failure-class exit code;
// anything else (an older server, an intervening proxy) falls back to
// the raw body and the generic exit code.
func apiError(verb string, status int, raw []byte) error {
	det, ok := httpapi.Decode(raw)
	if !ok {
		return fmt.Errorf("%s returned %d: %s", verb, status, strings.TrimSpace(string(raw)))
	}
	err := fmt.Errorf("%s returned %d: %s: %s", verb, status, det.Code, det.Message)
	switch {
	case det.Code == httpapi.CodeQuotaExceeded:
		return &exitError{code: exitQuota, err: err}
	case det.Code.Transient():
		return &exitError{code: exitTransient, err: err}
	}
	return err
}

// postJSON posts body to url with the tenant key attached.
func postJSON(url, apiKey string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	return http.DefaultClient.Do(req)
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: quditc transpile|submit|watch|sweep [flags] [input]")
	}
	switch args[0] {
	case "transpile":
		return runTranspile(args[1:], stdin, stdout)
	case "submit":
		return runSubmit(args[1:], stdin, stdout)
	case "watch":
		return runWatch(args[1:], stdout)
	case "sweep":
		return runSweep(args[1:], stdin, stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (have: transpile, submit, watch, sweep)", args[0])
	}
}

// runSubmit posts one JobRequest and either prints the returned view
// or (with -watch) follows the job's event stream to settlement.
func runSubmit(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "quditd or coordinator base URL")
	watch := fs.Bool("watch", false, "stream the job's events until it settles")
	asJSON := fs.Bool("json", false, "print raw JSON instead of the human summary")
	timeout := fs.Duration("timeout", 0, "total watch budget across reconnects (0 = no limit)")
	apiKey := apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	body, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	resp, err := postJSON(strings.TrimSuffix(*addr, "/")+"/v1/jobs", *apiKey, body)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return apiError("submit", resp.StatusCode, raw)
	}
	var view serve.JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if !*watch {
		if *asJSON {
			fmt.Fprintln(stdout, string(raw))
		} else {
			fmt.Fprintf(stdout, "job %s: %s\n", view.ID, view.State)
		}
		return nil
	}
	return watchJob(*addr, *apiKey, view.ID, *asJSON, *timeout, stdout)
}

// runWatch attaches to an existing job's event stream.
func runWatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc watch", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "quditd or coordinator base URL")
	asJSON := fs.Bool("json", false, "print raw event JSON instead of the human summary")
	timeout := fs.Duration("timeout", 0, "total watch budget across reconnects (0 = no limit)")
	apiKey := apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: quditc watch [-addr URL] [-api-key KEY] [-json] [-timeout D] <job-id>")
	}
	return watchJob(*addr, *apiKey, fs.Arg(0), *asJSON, *timeout, stdout)
}

// streamSSE reconnect pacing: dropped streams and refused connections
// retry with exponential backoff so a watch rides out a daemon restart
// (a journaled quditd replays unsettled IDs before it listens again)
// without hammering the listen address while it is down.
const (
	reconnectBase = 250 * time.Millisecond
	reconnectCap  = 5 * time.Second
)

// streamSSE follows a Server-Sent-Events endpoint until handle reports
// the terminal event, reconnecting on dropped streams with the
// standard Last-Event-ID header so already-seen events are not
// replayed. Connection failures and non-200 answers on the first
// attempt return immediately (the target is unreachable or unknown —
// retrying cannot help); once a stream has been established, drops and
// refused reconnects retry with exponential backoff until timeout
// (zero = forever). A 429 answer is backpressure, not loss: the
// server's Retry-After (when present) replaces the client's own
// backoff delay before the next attempt. A quditd running with
// -journal survives this loop: its restart replays unsettled jobs and
// sweeps before listening, so the resumed stream picks up after
// Last-Event-ID. Any other non-200 on a reconnect still reports the
// stream as lost — the ID settled before the crash or the daemon runs
// without a journal.
func streamSSE(url, apiKey string, timeout time.Duration, handle func(event, data string) bool) error {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	lastID := ""
	connected := false
	delay := reconnectBase
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		if apiKey != "" {
			req.Header.Set("X-API-Key", apiKey)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("watch timed out after %v", timeout)
			}
			if !connected {
				return err
			}
			if !sleepCtx(ctx, delay) {
				return fmt.Errorf("watch timed out after %v", timeout)
			}
			delay = nextDelay(delay)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := retryAfterDelay(resp, delay)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if !sleepCtx(ctx, wait) {
				return fmt.Errorf("watch timed out after %v", timeout)
			}
			delay = nextDelay(delay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if connected {
				return fmt.Errorf("stream lost: reconnect returned %d (the id settled before a restart, or the server runs without -journal): %s",
					resp.StatusCode, strings.TrimSpace(string(raw)))
			}
			return apiError("events", resp.StatusCode, raw)
		}
		connected = true
		delay = reconnectBase // healthy connection resets the backoff
		terminal := consumeSSE(resp.Body, &lastID, handle)
		resp.Body.Close()
		if terminal {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("watch timed out after %v", timeout)
		}
		// The stream dropped mid-flight; resume after the last seen
		// event.
		if !sleepCtx(ctx, delay) {
			return fmt.Errorf("watch timed out after %v", timeout)
		}
		delay = nextDelay(delay)
	}
}

// retryAfterDelay prefers the server's Retry-After header (whole
// seconds, per the envelope contract) over the client's own backoff.
func retryAfterDelay(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// nextDelay doubles a reconnect delay up to the cap.
func nextDelay(d time.Duration) time.Duration {
	if d *= 2; d > reconnectCap {
		return reconnectCap
	}
	return d
}

// sleepCtx sleeps for d, cut short by ctx; it reports whether the full
// wait elapsed (false = the watch budget ran out first).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// consumeSSE scans one SSE connection, tracking event IDs for
// resumption and dispatching each complete frame. It returns true when
// handle signalled the terminal event, false when the stream dropped.
func consumeSSE(r io.Reader, lastID *string, handle func(event, data string) bool) bool {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			*lastID = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if data != "" && handle(event, data) {
				return true
			}
			event, data = "", ""
		}
	}
	return false
}

// watchJob consumes the SSE stream of one job until its terminal
// event, printing each transition. It returns an error when the job
// settles anywhere but "done", so scripts can gate on the exit code.
func watchJob(addr, apiKey, id string, asJSON bool, timeout time.Duration, stdout io.Writer) error {
	url := strings.TrimSuffix(addr, "/") + "/v1/jobs/" + id + "/events"
	var final string
	err := streamSSE(url, apiKey, timeout, func(name, data string) bool {
		if asJSON {
			fmt.Fprintln(stdout, data)
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return false
		}
		if name == "requeued" {
			if !asJSON {
				fmt.Fprintf(stdout, "%s  %s\n", id, "requeued onto another worker")
			}
			return false
		}
		if !asJSON {
			printEvent(stdout, id, ev)
		}
		switch ev.State {
		case "done", "failed", "cancelled":
			final = ev.State
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if final == "" {
		return fmt.Errorf("event stream for %s ended before the job settled", id)
	}
	if final != "done" {
		return fmt.Errorf("job %s settled %s", id, final)
	}
	return nil
}

// runSweep posts one SweepRequest and either prints the accepted view
// or (with -watch) follows the sweep's event stream to settlement.
func runSweep(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc sweep", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "quditd or coordinator base URL")
	watch := fs.Bool("watch", false, "stream cell settlements until the sweep settles")
	asJSON := fs.Bool("json", false, "print raw JSON instead of the human summary")
	timeout := fs.Duration("timeout", 0, "total watch budget across reconnects (0 = no limit)")
	apiKey := apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	body, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	resp, err := postJSON(strings.TrimSuffix(*addr, "/")+"/v1/sweeps", *apiKey, body)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return apiError("sweep submit", resp.StatusCode, raw)
	}
	var view experiment.SweepView
	if err := json.Unmarshal(raw, &view); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if !*watch {
		if *asJSON {
			fmt.Fprintln(stdout, string(raw))
		} else {
			fmt.Fprintf(stdout, "sweep %s: %s (%d cells, kind %s)\n", view.ID, view.State, view.TotalCells, view.Kind)
		}
		return nil
	}
	return watchSweep(*addr, *apiKey, view.ID, *asJSON, *timeout, stdout)
}

// watchSweep consumes a sweep's SSE stream until the terminal event,
// printing cell settlements as progress and the final aggregate. The
// exit code gates on the sweep completing (failed cells are reported
// but tolerated — that is the sweep contract).
func watchSweep(addr, apiKey, id string, asJSON bool, timeout time.Duration, stdout io.Writer) error {
	url := strings.TrimSuffix(addr, "/") + "/v1/sweeps/" + id + "/events"
	var final *experiment.SweepView
	settled := 0
	err := streamSSE(url, apiKey, timeout, func(_, data string) bool {
		if asJSON {
			fmt.Fprintln(stdout, data)
		}
		var ev experiment.SweepEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return false
		}
		switch {
		case ev.Type == experiment.EventCell && ev.Cell != nil:
			settled++
			if !asJSON {
				printCell(stdout, id, settled, ev.Cell)
			}
			return false
		case ev.Type == experiment.EventSweep && ev.State != experiment.SweepRunning:
			if ev.Sweep != nil {
				final = ev.Sweep
			}
			return true
		}
		return false
	})
	if err != nil {
		return err
	}
	if final == nil {
		return fmt.Errorf("event stream for %s ended before the sweep settled", id)
	}
	if !asJSON {
		printAggregate(stdout, id, final)
	}
	if final.State != experiment.SweepCompleted {
		return fmt.Errorf("sweep %s settled %s", id, final.State)
	}
	return nil
}

// printCell renders one settled cell for the human-readable stream.
func printCell(stdout io.Writer, id string, settled int, cv *experiment.CellView) {
	suffix := ""
	if cv.Cached {
		suffix = " (cached)"
	}
	switch {
	case cv.Metric != nil:
		fmt.Fprintf(stdout, "%s  cell %d [%d settled]: %s metric=%.6f%s\n", id, cv.Index, settled, cv.State, *cv.Metric, suffix)
	case cv.Error != "":
		fmt.Fprintf(stdout, "%s  cell %d [%d settled]: %s: %s\n", id, cv.Index, settled, cv.State, cv.Error)
	default:
		fmt.Fprintf(stdout, "%s  cell %d [%d settled]: %s%s\n", id, cv.Index, settled, cv.State, suffix)
	}
}

// printAggregate renders the settled sweep and its kind's aggregate.
func printAggregate(stdout io.Writer, id string, v *experiment.SweepView) {
	fmt.Fprintf(stdout, "%s  %s: %d done / %d failed / %d cancelled of %d cells (%d cached)\n",
		id, v.State, v.DoneCells, v.FailedCells, v.CancelledCells, v.TotalCells, v.CachedCells)
	if v.AggregateError != "" {
		fmt.Fprintf(stdout, "%s  aggregate error: %s\n", id, v.AggregateError)
	}
	if v.Aggregate == nil {
		return
	}
	switch {
	case v.Aggregate.RB != nil:
		rb := v.Aggregate.RB
		fmt.Fprintf(stdout, "%s  rb: decay_rate=%.6f avg_gate_infidelity=%.6f over %d lengths\n",
			id, rb.DecayRate, rb.AvgGateInfidelity, len(rb.Points))
	case v.Aggregate.QAOA != nil:
		qa := v.Aggregate.QAOA
		fmt.Fprintf(stdout, "%s  qaoa: best_ratio=%.4f at gamma=%.4f beta=%.4f (%d grid points, %d edges)\n",
			id, qa.BestRatio, qa.BestGamma, qa.BestBeta, len(qa.Surface), qa.Edges)
	case v.Aggregate.SQED != nil:
		sq := v.Aggregate.SQED
		if sq.FitError != "" {
			fmt.Fprintf(stdout, "%s  sqed: %d samples, fit failed: %s\n", id, len(sq.Times), sq.FitError)
		} else {
			fmt.Fprintf(stdout, "%s  sqed: omega=%.4f residual=%.4f over %d samples\n",
				id, sq.Omega, sq.Residual, len(sq.Times))
		}
	case v.Aggregate.QRC != nil:
		qr := v.Aggregate.QRC
		fmt.Fprintf(stdout, "%s  qrc: train_nmse=%.4f eval_nmse=%.4f (%d train / %d eval cells, %d features)\n",
			id, qr.TrainNMSE, qr.EvalNMSE, qr.TrainCells, qr.EvalCells, qr.Features)
	}
}

// printEvent renders one transition for the human-readable stream.
func printEvent(stdout io.Writer, id string, ev serve.Event) {
	switch {
	case ev.State == "done" && ev.Result != nil:
		cached := ""
		if ev.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(stdout, "%s  done%s: backend=%s seed=%d shots=%d counts=%d\n",
			id, cached, ev.Result.Backend, ev.Result.Seed, ev.Result.Shots, len(ev.Result.Counts))
	case ev.Error != "":
		fmt.Fprintf(stdout, "%s  %s: %s\n", id, ev.State, ev.Error)
	default:
		fmt.Fprintf(stdout, "%s  %s\n", id, ev.State)
	}
}

// jsonReport is the machine-readable projection of a transpile run.
type jsonReport struct {
	Level         string           `json:"level"`
	Passes        []string         `json:"passes"`
	LogicalOps    int              `json:"logical_ops"`
	PhysicalOps   int              `json:"physical_ops"`
	Mapping       []int            `json:"mapping"`
	FinalLayout   []int            `json:"final_layout"`
	SwapsInserted int              `json:"swaps_inserted"`
	OneQuditGates int              `json:"one_qudit_gates"`
	TwoQuditGates int              `json:"two_qudit_gates"`
	DepthBefore   int              `json:"depth_before"`
	DepthAfter    int              `json:"depth_after"`
	DurationSec   float64          `json:"duration_sec"`
	Fidelity      float64          `json:"fidelity_estimate"`
	Noise         *serve.NoiseSpec `json:"noise,omitempty"`
	Ops           []serveOpDump    `json:"ops"`
}

// serveOpDump is one physical op in the JSON dump.
type serveOpDump struct {
	Gate    string `json:"gate"`
	Targets []int  `json:"targets"`
}

func runTranspile(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quditc transpile", flag.ContinueOnError)
	cavities := fs.Int("cavities", 2, "forecast cavities in the target chain")
	modes := fs.Int("modes", 2, "modes per cavity (0 = full forecast module)")
	level := fs.Int("level", int(transpile.LevelNative), "transpile level: 0 route, 1 +native decomposition, 2 +device noise")
	seed := fs.Int64("seed", 0, "placement seed (0 = derive from the circuit, like an unseeded submission)")
	asJSON := fs.Bool("json", false, "emit a JSON report instead of the listing")
	// Accepted for flag-set uniformity across subcommands; transpile
	// runs locally and never sends it.
	_ = apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var spec serve.CircuitSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return fmt.Errorf("decoding circuit: %w", err)
	}
	logical, err := serve.BuildCircuit(spec)
	if err != nil {
		return err
	}
	lvl, err := transpile.ParseLevel(*level)
	if err != nil {
		return err
	}

	// The processor seed only matters for unseeded placement derivation;
	// 1 matches quditd's default.
	proc, err := core.NewCompactProcessor(*cavities, *modes, 1)
	if err != nil {
		return err
	}
	opts := []core.RunOption{core.WithTranspile(lvl)}
	if *seed != 0 {
		opts = append(opts, core.WithSeed(*seed))
	}
	res, err := proc.Transpile(logical, opts...)
	if err != nil {
		return err
	}

	if *asJSON {
		rep := jsonReport{
			Level:         lvl.String(),
			Passes:        res.Passes,
			LogicalOps:    logical.Len(),
			PhysicalOps:   res.Physical.Len(),
			Mapping:       res.Mapping.LogicalToMode,
			FinalLayout:   res.Report.FinalLayout,
			SwapsInserted: res.Report.SwapsInserted,
			OneQuditGates: res.Report.OneQuditGates,
			TwoQuditGates: res.Report.TwoQuditGates,
			DepthBefore:   res.Report.DepthBefore,
			DepthAfter:    res.Report.DepthAfter,
			DurationSec:   res.Report.DurationSec,
			Fidelity:      res.Report.FidelityEstimate,
		}
		if res.Noise != nil {
			rep.Noise = serve.NoiseSpecFrom(*res.Noise)
		}
		for _, op := range res.Physical.Ops() {
			rep.Ops = append(rep.Ops, serveOpDump{Gate: op.Gate.Name, Targets: op.Targets})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Fprintf(stdout, "target: %d cavities x %d modes, transpile level %d (%s)\n",
		*cavities, *modes, int(lvl), lvl)
	fmt.Fprintf(stdout, "passes: %v\n", res.Passes)
	fmt.Fprintf(stdout, "ops: %d logical -> %d physical (%d 1q, %d 2q, %d swaps)\n",
		logical.Len(), res.Physical.Len(),
		res.Report.OneQuditGates, res.Report.TwoQuditGates, res.Report.SwapsInserted)
	fmt.Fprintf(stdout, "depth: %d -> %d\n", res.Report.DepthBefore, res.Report.DepthAfter)
	fmt.Fprintf(stdout, "placement: %v  final layout: %v\n",
		res.Mapping.LogicalToMode, res.Report.FinalLayout)
	fmt.Fprintf(stdout, "duration: %.1f us   fidelity budget: %.4f\n",
		res.Report.DurationSec*1e6, res.Report.FidelityEstimate)
	if res.Noise != nil {
		fmt.Fprintf(stdout, "device noise: depol1=%.2e depol2=%.2e damping=%.2e dephasing=%.2e idle=(%.2e,%.2e)\n",
			res.Noise.Depol1, res.Noise.Depol2, res.Noise.Damping, res.Noise.Dephasing,
			res.Noise.IdleDamping, res.Noise.IdleDephasing)
	}
	fmt.Fprintf(stdout, "\n%s", res.Physical.String())
	return nil
}
