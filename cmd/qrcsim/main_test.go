package main

import "testing"

func TestRunNARMA2(t *testing.T) {
	if err := run([]string{"-dim", "4", "-samples", "60", "-esn", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMackeyWithShots(t *testing.T) {
	if err := run([]string{"-dim", "4", "-task", "mackey", "-samples", "60", "-shots", "64", "-esn", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadTask(t *testing.T) {
	if err := run([]string{"-task", "nonsense"}); err == nil {
		t.Error("bad task accepted")
	}
}
