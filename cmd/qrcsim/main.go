// Command qrcsim runs the quantum-machine-learning application: coupled-
// oscillator reservoir computing on time-series tasks, with optional
// finite-shot readout and a classical echo-state-network comparison.
//
// Usage:
//
//	qrcsim [-dim D] [-task narma2|narma10|mackey] [-samples N]
//	       [-shots S] [-esn N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"quditkit/internal/core"
	"quditkit/internal/qrc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qrcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qrcsim", flag.ContinueOnError)
	dim := fs.Int("dim", 6, "Fock levels per mode (neurons = dim^2)")
	task := fs.String("task", "narma2", "narma2 | narma10 | mackey")
	samples := fs.Int("samples", 200, "input samples")
	shots := fs.Int("shots", 0, "measurement shots per step (0 = exact expectations)")
	esnSize := fs.Int("esn", 32, "classical ESN comparison size (0 = skip)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Independent derived streams (core's Submit seed-splitting rule):
	// task generation, readout shot noise, and the classical baseline
	// each get their own, so changing one consumer never perturbs the
	// others.
	rng := rand.New(rand.NewSource(core.DeriveSeed(*seed, "qrc-task")))
	shotRng := rand.New(rand.NewSource(core.DeriveSeed(*seed, "qrc-readout")))
	esnRng := rand.New(rand.NewSource(core.DeriveSeed(*seed, "qrc-esn")))
	var inputs, targets []float64
	switch *task {
	case "narma2":
		inputs, targets = qrc.NARMA2(rng, *samples)
	case "narma10":
		inputs, targets = qrc.NARMA10(rng, *samples)
	case "mackey":
		mg, err := qrc.MackeyGlass(*samples, 17)
		if err != nil {
			return err
		}
		inputs = mg
		targets = make([]float64, len(mg))
		copy(targets[:len(mg)-1], mg[1:])
	default:
		return fmt.Errorf("unknown task %q", *task)
	}

	reservoir, err := qrc.NewReservoir(qrc.DefaultParams(*dim))
	if err != nil {
		return err
	}
	var provider qrc.FeatureProvider = reservoir
	if *shots > 0 {
		provider = &qrc.ShotSampledProvider{Reservoir: reservoir, Shots: *shots, Rng: shotRng}
	}
	res, err := qrc.EvaluateTask(provider, inputs, targets, 20, 0.7, 1e-6)
	if err != nil {
		return err
	}
	fmt.Printf("task %s: quantum reservoir, %d neurons", *task, reservoir.Params().Neurons())
	if *shots > 0 {
		fmt.Printf(" (%d shots/step)", *shots)
	}
	fmt.Printf("\n  train NMSE: %.4f\n  test NMSE:  %.4f\n", res.TrainNMSE, res.TestNMSE)

	if *esnSize > 0 {
		esn, err := qrc.NewESN(esnRng, *esnSize, 0.9, 0.5, 1.0)
		if err != nil {
			return err
		}
		eres, err := qrc.EvaluateTask(esn, inputs, targets, 20, 0.7, 1e-6)
		if err != nil {
			return err
		}
		fmt.Printf("classical ESN-%d:\n  train NMSE: %.4f\n  test NMSE:  %.4f\n",
			*esnSize, eres.TrainNMSE, eres.TestNMSE)
	}
	return nil
}
