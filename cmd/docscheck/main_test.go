package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTree(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "good", "doc.go"),
		"// Package good is documented.\npackage good\n")
	writeFile(t, filepath.Join(root, "good", "other.go"),
		"package good\n")
	writeFile(t, filepath.Join(root, "bad", "bad.go"),
		"package bad\n")
	// Test files never satisfy the requirement on their own.
	writeFile(t, filepath.Join(root, "testonly", "x.go"),
		"package testonly\n")
	writeFile(t, filepath.Join(root, "testonly", "x_test.go"),
		"// Package testonly tests things.\npackage testonly\n")
	// Directories without Go files are ignored.
	writeFile(t, filepath.Join(root, "empty", "README.md"), "nothing here\n")

	bad, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(root, "bad"):      true,
		filepath.Join(root, "testonly"): true,
	}
	if len(bad) != len(want) {
		t.Fatalf("offenders = %v, want %v", bad, want)
	}
	for _, dir := range bad {
		if !want[dir] {
			t.Errorf("unexpected offender %s", dir)
		}
	}
}

// TestRepositoryIsClean runs the checker against this repository's own
// internal/ and cmd/ trees — the same invariant CI enforces.
func TestRepositoryIsClean(t *testing.T) {
	for _, root := range []string{"../../internal", "../../cmd"} {
		bad, err := checkTree(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range bad {
			t.Errorf("package in %s has no package comment", dir)
		}
	}
}
