package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTree(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "good", "doc.go"),
		"// Package good is documented.\npackage good\n")
	writeFile(t, filepath.Join(root, "good", "other.go"),
		"package good\n")
	writeFile(t, filepath.Join(root, "bad", "bad.go"),
		"package bad\n")
	// Test files never satisfy the requirement on their own.
	writeFile(t, filepath.Join(root, "testonly", "x.go"),
		"package testonly\n")
	writeFile(t, filepath.Join(root, "testonly", "x_test.go"),
		"// Package testonly tests things.\npackage testonly\n")
	// Directories without Go files are ignored.
	writeFile(t, filepath.Join(root, "empty", "README.md"), "nothing here\n")

	bad, err := checkTree(root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(root, "bad"):      true,
		filepath.Join(root, "testonly"): true,
	}
	if len(bad) != len(want) {
		t.Fatalf("offenders = %v, want %v", bad, want)
	}
	for _, dir := range bad {
		if !want[dir] {
			t.Errorf("unexpected offender %s", dir)
		}
	}
}

// TestRepositoryIsClean runs the checker against this repository's own
// internal/ and cmd/ trees — the same invariant CI enforces.
func TestRepositoryIsClean(t *testing.T) {
	for _, root := range []string{"../../internal", "../../cmd"} {
		bad, err := checkTree(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, dir := range bad {
			t.Errorf("package in %s has no package comment", dir)
		}
	}
}

func TestCheckExportedTree(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "x.go"), `// Package pkg is a fixture.
package pkg

type Undoc struct{}

// Doc is documented.
func Doc() {}

func NoDoc() {}

func (Undoc) Method() {}

type hidden struct{}

func (hidden) Exported() {}

// Group constants share one comment.
const (
	A = 1
	B = 2
)

const (
	C = 3 // C has a line comment.
	D = 4
)
`)
	bad, err := checkExportedTree(root)
	if err != nil {
		t.Fatal(err)
	}
	wantSuffixes := []string{"Undoc", "NoDoc", "Undoc.Method", "D"}
	if len(bad) != len(wantSuffixes) {
		t.Fatalf("offenders = %v, want %d entries", bad, len(wantSuffixes))
	}
	for i, suffix := range wantSuffixes {
		if got := bad[i]; len(got) < len(suffix) || got[len(got)-len(suffix):] != suffix {
			t.Errorf("offender %d = %q, want suffix %q", i, got, suffix)
		}
	}
}

// TestExportedTreesAreClean runs the strict exported-identifier check
// against the service-surface packages — the invariant the CI docs job
// enforces.
func TestExportedTreesAreClean(t *testing.T) {
	for _, root := range []string{"../../internal/cluster", "../../internal/serve", "../../internal/core"} {
		bad, err := checkExportedTree(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, ident := range bad {
			t.Errorf("exported identifier without doc comment: %s", ident)
		}
	}
}

// TestCollectBinaryFlags parses the real cmd/ tree: the fleet flags
// this repo documents must be seen by the checker, or the flagrefs
// gate would reject the docs that describe them.
func TestCollectBinaryFlags(t *testing.T) {
	byBinary, err := collectBinaryFlags("..")
	if err != nil {
		t.Fatal(err)
	}
	for bin, want := range map[string][]string{
		"quditd": {"addr", "role", "coordinator", "advertise", "id", "heartbeat", "heartbeat-ttl", "cache", "seed"},
		"quditc": {"addr", "watch", "json", "cavities", "level"},
	} {
		flags := byBinary[bin]
		if flags == nil {
			t.Fatalf("binary %s not found", bin)
		}
		for _, f := range want {
			if !flags[f] {
				t.Errorf("%s: flag -%s not collected (have %v)", bin, f, flags)
			}
		}
	}
}

func TestFlagRefsIn(t *testing.T) {
	byBinary := map[string]map[string]bool{
		"quditd": {"addr": true, "role": true},
		"quditc": {"watch": true},
	}
	union := map[string]bool{"addr": true, "role": true, "watch": true}
	doc := "Start with `quditd -addr :8080 -role worker`.\n" + // ok
		"Then `quditd -bogus`.\n" + // unknown flag for quditd
		"The `-watch` flag streams events.\n" + // bare span, known
		"The `-missing` flag does not exist.\n" + // bare span, unknown
		"Ignore `curl -s http://x` and prose-dashes - like this.\n" + // no binary named
		"```\nquditd -role coordinator\ncurl -fsS url -d '{}'\nquditc submit -watch job.json\n```\n"
	refs := flagRefsIn(doc, byBinary, union)
	if len(refs) != 2 {
		t.Fatalf("refs = %+v, want 2", refs)
	}
	if refs[0].flag != "bogus" || refs[0].line != 2 {
		t.Errorf("first ref = %+v", refs[0])
	}
	if refs[1].flag != "missing" || refs[1].line != 4 {
		t.Errorf("second ref = %+v", refs[1])
	}
}
