// Command docscheck enforces the repository's documentation floor in
// two modes.
//
// The default mode walks the given directory trees (default internal
// and cmd) and fails when any Go package lacks a package comment. On
// top of that, the trees named by -exported (default internal/cluster,
// internal/serve, internal/core, internal/experiment, internal/chaos,
// internal/journal — the service-surface packages an operator reads
// first) must carry a doc comment on every exported top-level
// identifier: types, functions, methods on exported types, and
// const/var groups.
//
// The -flagrefs mode cross-checks documentation against the binaries:
// it collects every flag registered by the packages under cmd/ and
// fails when a named documentation file references a flag no binary
// registers — the drift that silently invalidates runbooks when a
// flag is renamed. A doc line (inside an inline code span or fenced
// code block) is checked against a binary's flag set when it names
// that binary; a bare `-flag` span is checked against the union of
// all binaries.
//
// Usage:
//
//	go run ./cmd/docscheck                     # check internal/ and cmd/
//	go run ./cmd/docscheck ./pkg ...           # check explicit trees
//	go run ./cmd/docscheck -exported a,b ...   # override the strict trees
//	go run ./cmd/docscheck -flagrefs README.md docs/OPERATIONS.md
//
// CI runs both modes in the docs job so every package stays documented
// and every documented flag stays real.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	fs := flag.NewFlagSet("docscheck", flag.ExitOnError)
	exported := fs.String("exported", "internal/cluster,internal/serve,internal/core,internal/experiment,internal/chaos,internal/journal,internal/tenant,internal/httpapi,internal/metrics",
		"comma-separated trees whose exported identifiers must all carry doc comments")
	flagrefs := fs.Bool("flagrefs", false,
		"treat arguments as documentation files and fail on references to unregistered flags")
	_ = fs.Parse(os.Args[1:])

	if *flagrefs {
		os.Exit(runFlagRefs(fs.Args()))
	}
	os.Exit(runDocCheck(fs.Args(), splitList(*exported)))
}

// splitList parses a comma-separated list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// runDocCheck is the default mode: package comments everywhere,
// exported-identifier comments in the strict trees.
func runDocCheck(roots, strictTrees []string) int {
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var bad []string
	for _, root := range roots {
		offenders, err := checkTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		bad = append(bad, offenders...)
	}
	for _, dir := range bad {
		fmt.Fprintf(os.Stderr, "docscheck: package in %s has no package comment\n", dir)
	}

	var undocumented []string
	for _, tree := range strictTrees {
		if _, err := os.Stat(tree); err != nil {
			continue // tree absent in this checkout
		}
		offenders, err := checkExportedTree(tree)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		undocumented = append(undocumented, offenders...)
	}
	for _, ident := range undocumented {
		fmt.Fprintf(os.Stderr, "docscheck: exported identifier without doc comment: %s\n", ident)
	}
	if len(bad) > 0 || len(undocumented) > 0 {
		return 1
	}
	return 0
}

// checkTree walks one directory tree and returns the directories whose
// packages have no package comment.
func checkTree(root string) ([]string, error) {
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ok, hasGo, err := dirHasPackageComment(path)
		if err != nil {
			return err
		}
		if hasGo && !ok {
			bad = append(bad, path)
		}
		return nil
	})
	return bad, err
}

// dirHasPackageComment parses the package clauses of the non-test Go
// files in one directory. hasGo reports whether any were found; ok
// reports whether at least one carries a package doc comment.
func dirHasPackageComment(dir string) (ok, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, hasGo, fmt.Errorf("parsing %s: %w", filepath.Join(dir, name), err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}

// checkExportedTree walks one tree and returns "file:line: name" for
// every exported top-level identifier lacking a doc comment.
func checkExportedTree(root string) ([]string, error) {
	var bad []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, decl := range f.Decls {
			bad = append(bad, undocumentedIn(fset, decl)...)
		}
		return nil
	})
	return bad, err
}

// undocumentedIn returns the undocumented exported identifiers of one
// top-level declaration.
func undocumentedIn(fset *token.FileSet, decl ast.Decl) []string {
	var bad []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		bad = append(bad, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return nil
		}
		if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
			report(d.Pos(), funcDisplayName(d))
		}
	case *ast.GenDecl:
		groupDocumented := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				// A type must be documented itself; a group comment on a
				// multi-type block is accepted for single-spec decls only
				// (the standard "// Foo is ..." placement).
				if !s.Name.IsExported() {
					continue
				}
				specDocumented := s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != ""
				if !specDocumented && !(groupDocumented && len(d.Specs) == 1) {
					report(s.Pos(), s.Name.Name)
				}
			case *ast.ValueSpec:
				// Const/var: a documented group covers all its specs;
				// otherwise each exported spec needs its own comment.
				if groupDocumented {
					continue
				}
				specDocumented := (s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
					(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "")
				if specDocumented {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is
// exported (methods on unexported types are not part of the API
// surface). Plain functions return true.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcDisplayName renders "Recv.Name" for methods, "Name" otherwise.
func funcDisplayName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// ---- flag-reference mode ----

// flagVarMethods registers the flag name as the second argument
// (fs.StringVar(&v, "name", ...)); flagValueMethods as the first
// (fs.String("name", ...)).
var (
	flagVarMethods = map[string]bool{
		"StringVar": true, "IntVar": true, "Int64Var": true, "UintVar": true,
		"Uint64Var": true, "BoolVar": true, "Float64Var": true, "DurationVar": true,
	}
	flagValueMethods = map[string]bool{
		"String": true, "Int": true, "Int64": true, "Uint": true,
		"Uint64": true, "Bool": true, "Float64": true, "Duration": true,
	}
)

// runFlagRefs cross-checks doc files against the flags the cmd/
// binaries register.
func runFlagRefs(docs []string) int {
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: -flagrefs needs documentation files to check")
		return 2
	}
	byBinary, err := collectBinaryFlags("cmd")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		return 2
	}
	union := map[string]bool{}
	for _, set := range byBinary {
		for f := range set {
			union[f] = true
		}
	}
	bad := 0
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			return 2
		}
		for _, ref := range flagRefsIn(string(data), byBinary, union) {
			fmt.Fprintf(os.Stderr, "docscheck: %s:%d: flag -%s is not registered by %s\n",
				doc, ref.line, ref.flag, ref.scope)
			bad++
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// collectBinaryFlags parses every main package under cmdRoot and
// returns binary name -> registered flag names. Every binary also
// understands the implicit -help/-h of the flag package.
func collectBinaryFlags(cmdRoot string) (map[string]map[string]bool, error) {
	entries, err := os.ReadDir(cmdRoot)
	if err != nil {
		return nil, err
	}
	out := map[string]map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		flags := map[string]bool{"help": true, "h": true}
		dir := filepath.Join(cmdRoot, e.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, fe := range files {
			if fe.IsDir() || !strings.HasSuffix(fe.Name(), ".go") || strings.HasSuffix(fe.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, fe.Name()), nil, 0)
			if err != nil {
				return nil, err
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				var nameArg ast.Expr
				switch {
				case flagVarMethods[sel.Sel.Name] && len(call.Args) >= 2:
					nameArg = call.Args[1]
				case flagValueMethods[sel.Sel.Name] && len(call.Args) == 3:
					nameArg = call.Args[0]
				default:
					return true
				}
				if lit, ok := nameArg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
						flags[name] = true
					}
				}
				return true
			})
		}
		out[e.Name()] = flags
	}
	return out, nil
}

// flagRef is one unresolved flag reference in a doc file.
type flagRef struct {
	line  int
	flag  string
	scope string
}

var flagToken = regexp.MustCompile(`(^|[\s"'` + "`" + `])-([a-z][a-z0-9-]*)`)

// flagRefsIn scans markdown for flag references inside code context
// (inline spans and fenced blocks). A line naming one of our binaries
// is checked against that binary's flag set; a bare single-token
// `-flag` span is checked against the union of all binaries; anything
// else (curl flags, go test flags, prose dashes) is ignored.
func flagRefsIn(doc string, byBinary map[string]map[string]bool, union map[string]bool) []flagRef {
	var refs []flagRef
	inFence := false
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		codeParts := []string{}
		if inFence {
			codeParts = append(codeParts, line)
		} else {
			// Inline code spans.
			for _, span := range inlineSpans(line) {
				if flag, ok := bareFlagSpan(span); ok {
					if !union[flag] {
						refs = append(refs, flagRef{line: i + 1, flag: flag, scope: "any binary"})
					}
					continue
				}
				codeParts = append(codeParts, span)
			}
		}
		for _, part := range codeParts {
			var owners []string
			for bin := range byBinary {
				if containsWord(part, bin) {
					owners = append(owners, bin)
				}
			}
			if len(owners) == 0 {
				continue
			}
			allowed := map[string]bool{}
			for _, bin := range owners {
				for f := range byBinary[bin] {
					allowed[f] = true
				}
			}
			for _, m := range flagToken.FindAllStringSubmatch(part, -1) {
				if !allowed[m[2]] {
					refs = append(refs, flagRef{line: i + 1, flag: m[2], scope: strings.Join(owners, "/")})
				}
			}
		}
	}
	return refs
}

// inlineSpans extracts `...` spans from one markdown line.
func inlineSpans(line string) []string {
	var spans []string
	parts := strings.Split(line, "`")
	for i := 1; i < len(parts); i += 2 {
		spans = append(spans, parts[i])
	}
	return spans
}

// bareFlagSpan reports whether a span is exactly one flag token like
// "-cache" or "-role standalone", returning the flag name.
func bareFlagSpan(span string) (string, bool) {
	fields := strings.Fields(span)
	if len(fields) == 0 || len(fields) > 2 || !strings.HasPrefix(fields[0], "-") {
		return "", false
	}
	name := strings.TrimPrefix(fields[0], "-")
	name, _, _ = strings.Cut(name, "=")
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return "", false
	}
	return name, true
}

// containsWord reports a whole-word occurrence of w in s.
func containsWord(s, w string) bool {
	idx := 0
	for {
		j := strings.Index(s[idx:], w)
		if j < 0 {
			return false
		}
		j += idx
		beforeOK := j == 0 || !isWordChar(s[j-1])
		after := j + len(w)
		afterOK := after >= len(s) || !isWordChar(s[after])
		if beforeOK && afterOK {
			return true
		}
		idx = j + len(w)
	}
}

// isWordChar classifies identifier-ish characters for word-boundary
// checks.
func isWordChar(c byte) bool {
	return c == '_' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
