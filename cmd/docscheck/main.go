// Command docscheck enforces the repository's documentation floor: it
// walks the given directory trees (default internal and cmd) and fails
// with a non-zero exit when any Go package lacks a package comment —
// the doc comment immediately preceding a package clause in at least
// one of its non-test files. CI runs it in the docs job so every
// package under internal/ and cmd/ stays documented.
//
// Usage:
//
//	go run ./cmd/docscheck            # check internal/ and cmd/
//	go run ./cmd/docscheck ./pkg ...  # check explicit trees
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var bad []string
	for _, root := range roots {
		offenders, err := checkTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		bad = append(bad, offenders...)
	}
	if len(bad) > 0 {
		for _, dir := range bad {
			fmt.Fprintf(os.Stderr, "docscheck: package in %s has no package comment\n", dir)
		}
		os.Exit(1)
	}
}

// checkTree walks one directory tree and returns the directories whose
// packages have no package comment.
func checkTree(root string) ([]string, error) {
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		ok, hasGo, err := dirHasPackageComment(path)
		if err != nil {
			return err
		}
		if hasGo && !ok {
			bad = append(bad, path)
		}
		return nil
	})
	return bad, err
}

// dirHasPackageComment parses the package clauses of the non-test Go
// files in one directory. hasGo reports whether any were found; ok
// reports whether at least one carries a package doc comment.
func dirHasPackageComment(dir string) (ok, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, hasGo, fmt.Errorf("parsing %s: %w", filepath.Join(dir, name), err)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
