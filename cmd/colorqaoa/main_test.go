package main

import "testing"

func TestRunNDARMode(t *testing.T) {
	if err := run([]string{"-n", "5", "-chords", "1", "-shots", "8", "-iters", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQRACMode(t *testing.T) {
	if err := run([]string{"-n", "12", "-chords", "3", "-mode", "qrac"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSampleMode(t *testing.T) {
	if err := run([]string{"-n", "5", "-chords", "1", "-mode", "sample", "-shots", "16"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run([]string{"-mode", "nonsense"}); err == nil {
		t.Error("bad mode accepted")
	}
}
