// Command colorqaoa runs the optimization application: NDAR-boosted QAOA
// graph coloring on qudits, the QRAC relaxation solver for larger
// instances, or a single shot-sampled QAOA circuit executed on the
// forecast processor through the core Submit API.
//
// Usage:
//
//	colorqaoa [-n N] [-chords C] [-colors K] [-mode ndar|qrac|sample]
//	          [-shots S] [-iters I] [-damping P] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"quditkit/internal/core"
	"quditkit/internal/noise"
	"quditkit/internal/qaoa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colorqaoa:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colorqaoa", flag.ContinueOnError)
	n := fs.Int("n", 8, "graph vertices")
	chords := fs.Int("chords", 3, "random chords added to the base cycle")
	colors := fs.Int("colors", 3, "number of colors (= qudit dimension)")
	mode := fs.String("mode", "ndar", "ndar | qrac | sample")
	shots := fs.Int("shots", 64, "trajectory shots per NDAR round")
	iters := fs.Int("iters", 5, "NDAR rounds")
	damping := fs.Float64("damping", 0.2, "photon-loss probability per gate")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := qaoa.RandomRegularish(rng, *n, *chords)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, %d colors\n", g.N, len(g.Edges), *colors)

	switch *mode {
	case "ndar":
		opts := qaoa.NDAROptions{
			Iterations: *iters,
			Shots:      *shots,
			Gamma:      0.8,
			Beta:       0.5,
			Noise:      noise.Model{Damping: *damping, Depol2: 0.02, Depol1: 0.002},
		}
		res, err := qaoa.RunNDAR(rng, g, *colors, opts)
		if err != nil {
			return err
		}
		fmt.Printf("brute-force optimum: %d properly colored edges\n", res.OptimalProper)
		fmt.Println("round  mean     best  P(opt)")
		for _, r := range res.Rounds {
			fmt.Printf("%-5d  %-7.2f  %-4d  %.3f\n", r.Round, r.MeanProper, r.BestProper, r.POptimal)
		}
		fmt.Printf("best coloring found: %v (%d proper edges)\n", res.BestAssign, res.BestProper)
	case "qrac":
		res, err := qaoa.SolveQRAC(rng, g, *colors, qaoa.QRACOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("qudits used: %d (%d vertices per qudit)\n", res.Qudits, res.NodesPerQudit)
		fmt.Printf("QRAC proper edges:   %d / %d\n", res.Proper, res.TotalEdges)
		fmt.Printf("greedy proper edges: %d / %d\n", res.GreedyProper, res.TotalEdges)
	case "sample":
		// One noisy p=1 QAOA circuit compiled onto the forecast device and
		// sampled through the trajectory backend.
		col, err := qaoa.NewColoring(g, *colors)
		if err != nil {
			return err
		}
		c, err := col.Circuit([]float64{0.8}, []float64{0.5})
		if err != nil {
			return err
		}
		proc, err := core.NewCompactProcessor((g.N+1)/2, 2, *seed)
		if err != nil {
			return err
		}
		model := noise.Model{Damping: *damping, Depol2: 0.02, Depol1: 0.002}
		res, err := proc.SubmitOne(c,
			core.WithBackend(core.Trajectory),
			core.WithNoise(model),
			core.WithShots(*shots),
			core.WithWorkers(runtime.NumCPU()))
		if err != nil {
			return err
		}
		fmt.Printf("routed: %d swaps, coherence budget %.4f\n",
			res.Report.SwapsInserted, res.Report.FidelityEstimate)
		fmt.Printf("%d shots, top colorings:\n", res.Counts.Total())
		for _, e := range res.Counts.Top(5) {
			digits, err := core.ParseCountsKey(e.Key)
			if err != nil {
				return err
			}
			assign := col.Decode(digits)
			fmt.Printf("  %v  %4d shots  %d/%d proper edges\n",
				assign, e.N, g.ProperEdges(assign), len(g.Edges))
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
