// Command colorqaoa runs the optimization application: NDAR-boosted QAOA
// graph coloring on qudits, or the QRAC relaxation solver for larger
// instances.
//
// Usage:
//
//	colorqaoa [-n N] [-chords C] [-colors K] [-mode ndar|qrac]
//	          [-shots S] [-iters I] [-damping P] [-seed N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"quditkit/internal/noise"
	"quditkit/internal/qaoa"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "colorqaoa:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("colorqaoa", flag.ContinueOnError)
	n := fs.Int("n", 8, "graph vertices")
	chords := fs.Int("chords", 3, "random chords added to the base cycle")
	colors := fs.Int("colors", 3, "number of colors (= qudit dimension)")
	mode := fs.String("mode", "ndar", "ndar | qrac")
	shots := fs.Int("shots", 64, "trajectory shots per NDAR round")
	iters := fs.Int("iters", 5, "NDAR rounds")
	damping := fs.Float64("damping", 0.2, "photon-loss probability per gate")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	g, err := qaoa.RandomRegularish(rng, *n, *chords)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, %d colors\n", g.N, len(g.Edges), *colors)

	switch *mode {
	case "ndar":
		opts := qaoa.NDAROptions{
			Iterations: *iters,
			Shots:      *shots,
			Gamma:      0.8,
			Beta:       0.5,
			Noise:      noise.Model{Damping: *damping, Depol2: 0.02, Depol1: 0.002},
		}
		res, err := qaoa.RunNDAR(rng, g, *colors, opts)
		if err != nil {
			return err
		}
		fmt.Printf("brute-force optimum: %d properly colored edges\n", res.OptimalProper)
		fmt.Println("round  mean     best  P(opt)")
		for _, r := range res.Rounds {
			fmt.Printf("%-5d  %-7.2f  %-4d  %.3f\n", r.Round, r.MeanProper, r.BestProper, r.POptimal)
		}
		fmt.Printf("best coloring found: %v (%d proper edges)\n", res.BestAssign, res.BestProper)
	case "qrac":
		res, err := qaoa.SolveQRAC(rng, g, *colors, qaoa.QRACOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("qudits used: %d (%d vertices per qudit)\n", res.Qudits, res.NodesPerQudit)
		fmt.Printf("QRAC proper edges:   %d / %d\n", res.Proper, res.TotalEdges)
		fmt.Printf("greedy proper edges: %d / %d\n", res.GreedyProper, res.TotalEdges)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
