package quditkit_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"quditkit/internal/arch"
	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/noise"
	"quditkit/internal/qmath"
	"quditkit/internal/state"
	"quditkit/internal/synth"
)

// benchExperiment runs one registry experiment per iteration and logs its
// table (visible with -v), so `go test -bench` regenerates the paper
// artifacts while timing them.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := core.FindExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		// Same per-experiment stream derivation as cmd/quditbench, so the
		// benchmarked tables match the CLI's output for seed 1.
		rng := rand.New(rand.NewSource(core.DeriveSeed(1, id)))
		tab, err := exp.Run(rng, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tab.String())
		}
	}
}

// BenchmarkE1SQEDResources regenerates Table I row 1 (sQED 2D lattice
// resource estimate).
func BenchmarkE1SQEDResources(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2EncodingNoise regenerates the qudit-vs-qubit noise tolerance
// comparison ([11]).
func BenchmarkE2EncodingNoise(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3NDAR regenerates Table I row 2 (NDAR-QAOA coloring).
func BenchmarkE3NDAR(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Synthesis regenerates the d<=8 synthesis fidelity claim
// ([20]).
func BenchmarkE4Synthesis(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5QRAC regenerates the 50+-node QRAC scaling claim ([22],[23]).
func BenchmarkE5QRAC(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6QRC regenerates Table I row 3 (QRC vs classical reservoir).
func BenchmarkE6QRC(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7ShotNoise regenerates the QRC sampling-overhead challenge
// ([26]).
func BenchmarkE7ShotNoise(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Capacity regenerates the §I forecast capacity table.
func BenchmarkE8Capacity(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Tomography regenerates the reservoir-tomography
// small-training claim ([28]).
func BenchmarkE9Tomography(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Constraints regenerates the constraint-survival comparison
// ([18]).
func BenchmarkE10Constraints(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11CSUM regenerates the CSUM engineering-cost table.
func BenchmarkE11CSUM(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12RandomizedBenchmarking regenerates the cavity-qudit RB
// claim ([9]).
func BenchmarkE12RandomizedBenchmarking(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13WaveformClassification regenerates the analog-reservoir
// signal classification claim ([27]).
func BenchmarkE13WaveformClassification(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Swap3D regenerates the 3D-via-swap-networks extension
// (§II.A).
func BenchmarkE14Swap3D(b *testing.B) { benchExperiment(b, "E14") }

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationApplyStride measures the strided gather/scatter gate
// application used by the simulator.
func BenchmarkAblationApplyStride(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dims := hilbert.Uniform(6, 3) // 729-dim register
	amps := qmath.RandomState(rng, 729)
	v, err := state.FromAmplitudes(dims, amps)
	if err != nil {
		b.Fatal(err)
	}
	g := gates.CSUM(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Apply(g, 2, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationApplyKron measures the naive alternative: embedding
// the gate in a full-register matrix and multiplying.
func BenchmarkAblationApplyKron(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sp := hilbert.MustSpace(hilbert.Uniform(6, 3))
	amps := qmath.RandomState(rng, sp.Total())
	g := gates.CSUM(3, 3)
	// Build the embedded 729x729 matrix once per iteration to charge the
	// full cost of the strategy.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full := qmath.NewMatrix(sp.Total(), sp.Total())
		offsets := sp.TargetOffsets([]int{2, 4})
		sp.SubspaceIter([]int{2, 4}, func(base int) {
			for r := 0; r < 9; r++ {
				for c := 0; c < 9; c++ {
					full.Set(base+offsets[r], base+offsets[c], g.Matrix.At(r, c))
				}
			}
		})
		amps = full.MulVec(amps)
	}
}

// BenchmarkAblationDensityExact measures exact density-matrix execution
// of a noisy qutrit GHZ circuit through the DensityMatrix backend.
func BenchmarkAblationDensityExact(b *testing.B) {
	c := ghzCircuit(b, 3)
	spec := core.ExecSpec{Noise: noise.Model{Depol2: 0.02, Damping: 0.01}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.DensityMatrixBackend{}).Execute(c, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// warmPlanCache makes plan-cache state deterministic for a tracked
// benchmark: it resets the process-wide cache (so plans compiled by
// whatever benchmarks ran earlier in the same process can't leak in)
// and then runs warm() once so the measured loop sees a uniformly warm
// cache. Without this, the first b.Run variant of a benchmark paid the
// compile miss that later variants didn't, skewing cross-variant
// comparisons by whichever ordering the -bench filter happened to pick.
func warmPlanCache(b *testing.B, warm func() error) {
	b.Helper()
	core.PlanCacheReset()
	if err := warm(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

// BenchmarkAblationTrajectories measures the trajectory-averaged
// alternative at 100 shots through the Trajectory backend.
func BenchmarkAblationTrajectories(b *testing.B) {
	c := ghzCircuit(b, 3)
	spec := core.ExecSpec{
		Noise: noise.Model{Depol2: 0.02, Damping: 0.01},
		Shots: 100,
		Seed:  1,
	}
	warmPlanCache(b, func() error {
		_, err := (core.TrajectoryBackend{}).Execute(c, spec)
		return err
	})
	for i := 0; i < b.N; i++ {
		if _, err := (core.TrajectoryBackend{}).Execute(c, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitTrajectories tracks the trajectory worker pool: 512
// shots of a noisy 4-qutrit GHZ job submitted through the Processor at
// increasing pool widths. Counts are worker-count-invariant, so the
// variants do identical logical work and differ only in parallelism.
func BenchmarkSubmitTrajectories(b *testing.B) {
	proc, err := core.NewCompactProcessor(2, 2, 9)
	if err != nil {
		b.Fatal(err)
	}
	model, err := proc.NoiseModelForDim(3)
	if err != nil {
		b.Fatal(err)
	}
	c := ghzCircuit(b, 4)
	submit := func(workers, batch int) (core.Result, error) {
		opts := []core.RunOption{
			core.WithBackend(core.Trajectory),
			core.WithNoise(model),
			core.WithShots(512),
			core.WithSeed(7),
			core.WithWorkers(workers),
		}
		if batch > 1 {
			opts = append(opts, core.WithShotBatch(batch))
		}
		return proc.SubmitOne(c, opts...)
	}
	workerSet := []int{1, 4, runtime.NumCPU()}
	for _, workers := range workerSet {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			warmPlanCache(b, func() error {
				_, err := submit(workers, 1)
				return err
			})
			for i := 0; i < b.N; i++ {
				res, err := submit(workers, 1)
				if err != nil {
					b.Fatal(err)
				}
				if res.Counts.Total() != 512 {
					b.Fatalf("counts total %d", res.Counts.Total())
				}
			}
		})
	}
}

// BenchmarkSubmitTrajectoriesBatched is the same tracked job with shot
// batching enabled: identical logical work and — by the byte-identity
// contract — identical counts, so the series isolates what batching
// buys at each pool width. Batch sizes match the differential grid.
func BenchmarkSubmitTrajectoriesBatched(b *testing.B) {
	proc, err := core.NewCompactProcessor(2, 2, 9)
	if err != nil {
		b.Fatal(err)
	}
	model, err := proc.NoiseModelForDim(3)
	if err != nil {
		b.Fatal(err)
	}
	c := ghzCircuit(b, 4)
	want, err := proc.SubmitOne(c,
		core.WithBackend(core.Trajectory),
		core.WithNoise(model),
		core.WithShots(512),
		core.WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		for _, batch := range []int{8, 32} {
			workers, batch := workers, batch
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				b.ReportAllocs()
				submit := func() (core.Result, error) {
					return proc.SubmitOne(c,
						core.WithBackend(core.Trajectory),
						core.WithNoise(model),
						core.WithShots(512),
						core.WithSeed(7),
						core.WithWorkers(workers),
						core.WithShotBatch(batch))
				}
				warmPlanCache(b, func() error {
					res, err := submit()
					if err != nil {
						return err
					}
					for k, v := range want.Counts {
						if res.Counts[k] != v {
							b.Fatalf("batch=%d counts[%s] = %d, want %d", batch, k, res.Counts[k], v)
						}
					}
					return nil
				})
				for i := 0; i < b.N; i++ {
					if _, err := submit(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTrajectoryPlanShot measures one compiled noisy trajectory
// shot on a 4-qutrit GHZ circuit — the Plan engine's per-shot cost,
// which must stay allocation-free (allocs/op is the tracked number).
func BenchmarkTrajectoryPlanShot(b *testing.B) {
	c := ghzCircuit(b, 4)
	model := noise.Model{Depol1: 1e-4, Depol2: 1e-3, Damping: 2e-3, Dephasing: 1e-3}
	plan, err := c.Compile(model)
	if err != nil {
		b.Fatal(err)
	}
	ws, err := plan.NewWorkspace()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0))
	var sampler qmath.CDFSampler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Seed(core.DeriveSeed(int64(i), "bench-shot"))
		if _, err := plan.RunShot(ws, rng); err != nil {
			b.Fatal(err)
		}
		sampler.Load(ws.BornProbabilities())
		sampler.Draw(rng)
	}
}

// BenchmarkTrajectoryInterpretedShot is the legacy per-op interpreter
// on the identical workload, kept as the ablation baseline for the
// compiled-plan speedup recorded in BENCH_3.json.
func BenchmarkTrajectoryInterpretedShot(b *testing.B) {
	c := ghzCircuit(b, 4)
	model := noise.Model{Depol1: 1e-4, Depol2: 1e-3, Damping: 2e-3, Dephasing: 1e-3}
	rng := rand.New(rand.NewSource(0))
	var sampler qmath.CDFSampler
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng.Seed(core.DeriveSeed(int64(i), "bench-shot"))
		v, err := c.RunTrajectory(rng, model)
		if err != nil {
			b.Fatal(err)
		}
		sampler.Load(v.Probabilities())
		sampler.Draw(rng)
	}
}

// BenchmarkAblationSNAPBlocks sweeps the SNAP-displacement block budget
// and logs the fidelity frontier.
func BenchmarkAblationSNAPBlocks(b *testing.B) {
	d := 4
	target := gates.Givens(d, 1, 2, math.Pi/5, 0.4).Matrix
	for i := 0; i < b.N; i++ {
		for _, blocks := range []int{2, d, 2 * d} {
			rng := rand.New(rand.NewSource(3))
			res, err := synth.SynthesizeSNAPDisplacement(rng, target, synth.SNAPDisplacementOptions{
				Blocks: blocks, Restarts: 2, MaxSweeps: 25,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("blocks=%d fidelity=%.5f evals=%d", blocks, res.Fidelity, res.Evaluations)
			}
		}
	}
}

// BenchmarkAblationMappingAnnealed measures the noise-aware annealed
// placement against the identity placement on a ring workload.
func BenchmarkAblationMappingAnnealed(b *testing.B) {
	dev := arch.ForecastDevice(5)
	var edges []arch.InteractionEdge
	n := 10
	for i := 0; i < n; i++ {
		edges = append(edges, arch.InteractionEdge{U: i, V: (i + 1) % n, Weight: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		m, err := arch.MapNoiseAware(rng, dev, n, edges, arch.MappingOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ident, err := arch.MapIdentity(dev, n)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("annealed cost %.2f vs identity cost %.2f",
				m.Cost, arch.MappingCost(dev, edges, ident.LogicalToMode))
		}
	}
}

// BenchmarkAblationLindbladStep sweeps RK4 substep counts against the
// analytic decay solution and logs the error.
func BenchmarkAblationLindbladStep(b *testing.B) {
	d := 6
	kappa := 0.5
	a := gates.Lower(d).Scale(complex(math.Sqrt(kappa), 0))
	l, err := noise.NewSparseLindblad(qmath.NewMatrix(d, d), []*qmath.Matrix{a})
	if err != nil {
		b.Fatal(err)
	}
	rho0 := qmath.NewMatrix(d, d)
	rho0.Set(4, 4, 1)
	nOp := gates.Number(d)
	want := 4 * math.Exp(-kappa*2.0)
	for i := 0; i < b.N; i++ {
		for _, steps := range []int{4, 16, 64, 256} {
			out, err := l.Evolve(2.0, steps, rho0)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				got := real(out.Mul(nOp).Trace())
				b.Logf("substeps=%-4d |<n>-exact| = %.2e", steps, math.Abs(got-want))
			}
		}
	}
}

// ghzCircuit builds an n-qutrit GHZ preparation circuit.
func ghzCircuit(b *testing.B, n int) *circuit.Circuit {
	b.Helper()
	c, err := circuit.New(hilbert.Uniform(n, 3))
	if err != nil {
		b.Fatal(err)
	}
	c.MustAppend(gates.DFT(3), 0)
	for i := 1; i < n; i++ {
		c.MustAppend(gates.CSUM(3, 3), 0, i)
	}
	return c
}
