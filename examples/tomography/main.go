// tomography: reservoir-processing quantum state tomography (paper
// §II.C, after Krisnanda et al.) — calibrated displacements plus parity
// measurements train a linear map that reconstructs unknown cavity
// states, including a coherent state and a Schrödinger cat.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/qmath"
	"quditkit/internal/qrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(9))
	const d = 6

	model, err := qrc.TrainTomography(rng, qrc.TomographyOptions{
		Dim:         d,
		TrainStates: 160,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained displaced-parity tomography for d=%d cavity states\n\n", d)

	// Reconstruct named states and report fidelity.
	cases := []struct {
		name string
		psi  []complex128
	}{
		{"Fock |2>", basis(d, 2)},
		{"coherent |alpha=1>", gates.CoherentState(d, 1)},
		{"even cat (alpha=1.2)", gates.CatState(d, 1.2, +1)},
		{"superposition (|0>+|3>)/sqrt2", superpos(d, 0, 3)},
	}
	for _, c := range cases {
		rho := outer(c.psi)
		est, err := model.ReconstructState(rho)
		if err != nil {
			return err
		}
		var fid complex128
		for i := range c.psi {
			for j := range c.psi {
				fid += conj(c.psi[i]) * est.At(i, j) * c.psi[j]
			}
		}
		fmt.Printf("%-32s reconstruction fidelity %.4f\n", c.name, real(fid))
	}

	// Fidelity vs training-set size: the "small training sets" claim.
	// Each sweep point draws from its own derived stream (the Submit
	// API's seed-splitting rule) so points are independent.
	fmt.Println("\nmean fidelity vs training-set size (random pure states):")
	for _, n := range []int{16, 64, 256} {
		fid, err := qrc.EvaluateTomography(
			rand.New(rand.NewSource(core.DeriveSeed(10, fmt.Sprintf("tomo-%d", n)))),
			qrc.TomographyOptions{Dim: d, TrainStates: n}, 12)
		if err != nil {
			return err
		}
		fmt.Printf("  %4d states: %.4f\n", n, fid)
	}
	return nil
}

func basis(d, k int) []complex128 {
	v := make([]complex128, d)
	v[k] = 1
	return v
}

func superpos(d, a, b int) []complex128 {
	v := make([]complex128, d)
	v[a] = complex(1/1.4142135623730951, 0)
	v[b] = v[a]
	return v
}

func outer(psi []complex128) *qmath.Matrix {
	m := qmath.NewMatrix(len(psi), len(psi))
	for i := range psi {
		for j := range psi {
			m.Set(i, j, psi[i]*conj(psi[j]))
		}
	}
	return m
}

func conj(x complex128) complex128 { return complex(real(x), -imag(x)) }
