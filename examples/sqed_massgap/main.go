// sqed_massgap: the quantum-simulation application (paper §II.A) end to
// end — build a truncated U(1) rotor chain, extract its mass gap by a
// real-time Trotterized quench, compare against exact diagonalization,
// and price the 9x2-ladder target instance on the forecast device.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quditkit/internal/arch"
	"quditkit/internal/sqed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3-site qutrit chain (the encoding studied in the reference work).
	chain, err := sqed.NewChain(3, 1, 1.2, 0.3, false)
	if err != nil {
		return err
	}
	fmt.Printf("rotor chain: %d sites, d = %d\n", chain.NumSites, chain.LocalDim())

	// Real-time mass-gap measurement: perturb the ground state, Trotter
	// evolve, read the oscillation frequency of a local observable.
	res, err := chain.MassGapQuench(0.15, 128, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("mass gap, exact diagonalization: %.5f\n", res.GapExact)
	fmt.Printf("mass gap, real-time quench:      %.5f\n", res.GapMeasured)

	// Show a few samples of the recorded signal.
	fmt.Println("signal <U+U†>(t) samples:")
	for i := 0; i < len(res.Times); i += 16 {
		fmt.Printf("  t=%5.2f  %+.4f\n", res.Times[i], res.Signal[i])
	}

	// The Table I target: 9x2 ladder with d = 5 on the forecast machine.
	ladder, err := sqed.NewLadder(9, 2, 2, 1.0, 0.3)
	if err != nil {
		return err
	}
	est, err := ladder.EstimateResources(rand.New(rand.NewSource(7)), arch.ForecastDevice(10), 10)
	if err != nil {
		return err
	}
	fmt.Printf("\n9x2 ladder, d=%d, 10 Trotter steps on the forecast device:\n", est.LocalDim)
	fmt.Printf("  SNAP gates:     %d\n", est.SNAPGates)
	fmt.Printf("  entangling ops: %d (+%d routing swaps)\n", est.EntanglingOps, est.SwapsInserted)
	fmt.Printf("  serial duration: %.2f ms\n", est.DurationSec*1e3)
	fmt.Printf("  coherence budget fidelity: %.3f\n", est.FidelityBudget)
	fmt.Printf("  CSUM plan (%s): %.1f us at fidelity %.4f\n",
		est.CSUMPlan.Route, est.CSUMPlan.DurationSec*1e6, est.CSUMPlan.FidelityEstimate)
	return nil
}
