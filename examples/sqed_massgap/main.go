// sqed_massgap: the quantum-simulation application (paper §II.A) end to
// end — build a truncated U(1) rotor chain, extract its mass gap by a
// real-time Trotterized quench, compare against exact diagonalization,
// execute a noisy Trotter circuit through the unified Submit API, and
// price the 9x2-ladder target instance on the forecast device.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quditkit/internal/arch"
	"quditkit/internal/core"
	"quditkit/internal/sqed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3-site qutrit chain (the encoding studied in the reference work).
	chain, err := sqed.NewChain(3, 1, 1.2, 0.3, false)
	if err != nil {
		return err
	}
	fmt.Printf("rotor chain: %d sites, d = %d\n", chain.NumSites, chain.LocalDim())

	// Real-time mass-gap measurement: perturb the ground state, Trotter
	// evolve, read the oscillation frequency of a local observable.
	res, err := chain.MassGapQuench(0.15, 128, 0.2)
	if err != nil {
		return err
	}
	fmt.Printf("mass gap, exact diagonalization: %.5f\n", res.GapExact)
	fmt.Printf("mass gap, real-time quench:      %.5f\n", res.GapMeasured)

	// Show a few samples of the recorded signal.
	fmt.Println("signal <U+U†>(t) samples:")
	for i := 0; i < len(res.Times); i += 16 {
		fmt.Printf("  t=%5.2f  %+.4f\n", res.Times[i], res.Signal[i])
	}

	// Two Trotter steps of the chain executed with exact Kraus noise on
	// the density-matrix backend of the forecast processor, sampled with
	// finite shots — the paper's "difficult but executable" regime.
	trot, err := chain.TrotterCircuit(0.15, 2)
	if err != nil {
		return err
	}
	proc, err := core.NewCompactProcessor(2, 2, 7)
	if err != nil {
		return err
	}
	model, err := proc.NoiseModelForDim(chain.LocalDim())
	if err != nil {
		return err
	}
	sub, err := proc.SubmitOne(trot,
		core.WithBackend(core.DensityMatrix),
		core.WithNoise(model),
		core.WithShots(256))
	if err != nil {
		return err
	}
	fmt.Printf("\nnoisy 2-step Trotter circuit on the %s backend:\n", sub.Backend)
	fmt.Printf("  swaps %d, duration %.1f us, coherence budget %.4f\n",
		sub.Report.SwapsInserted, sub.Report.DurationSec*1e6, sub.Report.FidelityEstimate)
	for _, e := range sub.Counts.Top(3) {
		fmt.Printf("  |%s>  %3d / %d shots\n", e.Key, e.N, sub.Counts.Total())
	}

	// The Table I target: 9x2 ladder with d = 5 on the forecast machine.
	ladder, err := sqed.NewLadder(9, 2, 2, 1.0, 0.3)
	if err != nil {
		return err
	}
	est, err := ladder.EstimateResources(rand.New(rand.NewSource(7)), arch.ForecastDevice(10), 10)
	if err != nil {
		return err
	}
	fmt.Printf("\n9x2 ladder, d=%d, 10 Trotter steps on the forecast device:\n", est.LocalDim)
	fmt.Printf("  SNAP gates:     %d\n", est.SNAPGates)
	fmt.Printf("  entangling ops: %d (+%d routing swaps)\n", est.EntanglingOps, est.SwapsInserted)
	fmt.Printf("  serial duration: %.2f ms\n", est.DurationSec*1e3)
	fmt.Printf("  coherence budget fidelity: %.3f\n", est.FidelityBudget)
	fmt.Printf("  CSUM plan (%s): %.1f us at fidelity %.4f\n",
		est.CSUMPlan.Route, est.CSUMPlan.DurationSec*1e6, est.CSUMPlan.FidelityEstimate)
	return nil
}
