// qrc_timeseries: the quantum-machine-learning application (paper §II.C)
// — a two-mode dissipative cavity reservoir predicting a nonlinear time
// series, compared against classical echo-state networks of increasing
// size, with the shot-noise overhead of a realistic readout.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quditkit/internal/core"
	"quditkit/internal/qrc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(3))
	inputs, targets := qrc.NARMA2(rng, 160)

	// Two coupled cavity modes, 6 Fock levels each: 36 joint-population
	// "neurons" read out through the transmon.
	reservoir, err := qrc.NewReservoir(qrc.DefaultParams(6))
	if err != nil {
		return err
	}
	res, err := qrc.EvaluateTask(reservoir, inputs, targets, 20, 0.7, 1e-3)
	if err != nil {
		return err
	}
	fmt.Printf("quantum reservoir (%d neurons): test NMSE %.4f\n",
		reservoir.Params().Neurons(), res.TestNMSE)

	// Classical baseline sweep: how many tanh neurons match it?
	for _, n := range []int{8, 16, 32, 64} {
		esn, err := qrc.NewESN(rng, n, 0.9, 0.5, 1.0)
		if err != nil {
			return err
		}
		eres, err := qrc.EvaluateTask(esn, inputs, targets, 20, 0.7, 1e-3)
		if err != nil {
			return err
		}
		fmt.Printf("classical ESN-%-3d:             test NMSE %.4f\n", n, eres.TestNMSE)
	}

	// Finite measurement shots: the paper's "sampling overhead" warning.
	// Each shot budget reads from its own derived stream (the Submit
	// API's seed-splitting rule), so the sweep points are independent
	// and individually reproducible.
	fmt.Println("\nshot-noise overhead:")
	for _, shots := range []int{32, 512, 8192} {
		r, err := qrc.NewReservoir(qrc.DefaultParams(6))
		if err != nil {
			return err
		}
		shotRng := rand.New(rand.NewSource(core.DeriveSeed(3, fmt.Sprintf("readout-%d", shots))))
		prov := &qrc.ShotSampledProvider{Reservoir: r, Shots: shots, Rng: shotRng}
		sres, err := qrc.EvaluateTask(prov, inputs, targets, 20, 0.7, 1e-3)
		if err != nil {
			return err
		}
		fmt.Printf("  %5d shots/step: test NMSE %.4f\n", shots, sres.TestNMSE)
	}
	return nil
}
