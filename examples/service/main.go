// Service walkthrough: run the quditkit job service in-process — the
// same serve.Service that cmd/quditd exposes over HTTP — and watch a
// repeated workload hit the content-addressed result cache: enqueue a
// noisy trajectory job, resubmit it, cancel a long-running job, and
// read the queue/cache counters.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The same GHZ workload as examples/quickstart...
	logical, err := circuit.New(hilbert.Uniform(3, 3))
	if err != nil {
		return err
	}
	logical.MustAppend(gates.DFT(3), 0)
	logical.MustAppend(gates.CSUM(3, 3), 0, 1)
	logical.MustAppend(gates.CSUM(3, 3), 0, 2)

	// ...but executed through the asynchronous job service instead of a
	// direct Submit call. The service wraps the processor with a
	// bounded sharded queue and a content-addressed result cache.
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		return err
	}
	svc, err := serve.New(proc, serve.Config{})
	if err != nil {
		return err
	}
	defer svc.Close()

	model, err := proc.NoiseModelForDim(3)
	if err != nil {
		return err
	}
	opts := []core.RunOption{
		core.WithBackend(core.Trajectory),
		core.WithNoise(model),
		core.WithShots(512),
	}

	// Cold submission: queued, simulated by a shard worker, cached.
	start := time.Now()
	id, err := svc.Enqueue(logical, opts...)
	if err != nil {
		return err
	}
	res, err := svc.Await(context.Background(), id)
	if err != nil {
		return err
	}
	fmt.Printf("job %s: %d shots on the %s backend in %v\n",
		id, res.Counts.Total(), res.Backend, time.Since(start).Round(time.Microsecond))
	for _, e := range res.Counts.Top(3) {
		fmt.Printf("  |%s>  %3d shots\n", e.Key, e.N)
	}

	// Identical resubmission: settles from the cache without
	// re-simulating — the dominant pattern under heavy repeated
	// traffic, and byte-identical to the cold run by construction.
	start = time.Now()
	id2, err := svc.Enqueue(logical, opts...)
	if err != nil {
		return err
	}
	res2, err := svc.Await(context.Background(), id2)
	if err != nil {
		return err
	}
	status, err := svc.Status(id2)
	if err != nil {
		return err
	}
	fmt.Printf("job %s: cached=%v in %v, histograms identical: %v\n",
		id2, status.Cached, time.Since(start).Round(time.Microsecond),
		res.Counts.Equal(res2.Counts))

	// Cancellation: a long trajectory job aborts promptly mid-flight.
	longID, err := svc.Enqueue(logical,
		core.WithBackend(core.Trajectory), core.WithNoise(model),
		core.WithShots(1_000_000))
	if err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond)
	if err := svc.CancelJob(longID); err != nil {
		return err
	}
	if _, err := svc.Await(context.Background(), longID); !errors.Is(err, context.Canceled) {
		return fmt.Errorf("expected cancellation, got %v", err)
	}
	fmt.Printf("job %s: cancelled mid-flight\n", longID)

	stats := svc.Stats()
	fmt.Printf("service stats: %d enqueued, %d completed, %d cancelled; cache %d/%d (%d hits, %d misses)\n",
		stats.Enqueued, stats.Completed, stats.Cancelled,
		stats.CacheLen, stats.CacheCap, stats.CacheHits, stats.CacheMisses)
	return nil
}
