// Sweep walkthrough: run a QAOA (gamma, beta) grid as one experiment
// sweep — the paper's application suite served as a first-class
// workload — and watch its progress stream over the same HTTP surface
// cmd/quditd exposes.
//
// The program stands up an in-process sweep service (serve.Service +
// experiment.Manager behind experiment.NewHandler, exactly the
// standalone quditd stack), submits a 4x4 gamma-beta grid for a
// 4-node 3-coloring instance, follows the Server-Sent-Events stream
// as cells settle, and prints the aggregated ratio surface with the
// best angles. A resubmission then shows every cell settling from the
// content-addressed result cache.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"quditkit/internal/core"
	"quditkit/internal/experiment"
	"quditkit/internal/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The standalone quditd stack in miniature: processor, job
	// service, sweep manager, HTTP handler.
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		return err
	}
	svc, err := serve.New(proc, serve.Config{})
	if err != nil {
		return err
	}
	defer svc.Close()
	mgr, err := experiment.NewManager(experiment.ServeRunner{Service: svc}, experiment.Config{})
	if err != nil {
		return err
	}
	defer mgr.Close()
	ts := httptest.NewServer(experiment.NewHandler(mgr, serve.NewHandler(svc)))
	defer ts.Close()

	// One request, sixteen jobs: a 4x4 (gamma, beta) grid over a
	// random-regularish 4-node graph, 3 colors per node, one QAOA
	// layer. Each grid cell expands server-side into its own
	// content-addressed job with a seed derived from the sweep seed
	// and cell index.
	req := `{
	  "kind": "qaoa",
	  "shots": 256,
	  "seed": 11,
	  "qaoa": {
	    "nodes": 4, "colors": 3, "layers": 1,
	    "gammas": {"from": 0.2, "to": 1.4, "n": 4},
	    "betas":  {"from": 0.2, "to": 1.1, "n": 4}
	  }
	}`

	id, err := submit(ts.URL, req)
	if err != nil {
		return err
	}
	fmt.Printf("sweep %s submitted; streaming settlements:\n", id)

	// Follow the SSE stream: one "cell" event per settlement, then the
	// terminal "sweep" event carrying the full view and aggregate.
	// (quditc sweep -watch is the production consumer of this stream.)
	final, err := stream(ts.URL, id)
	if err != nil {
		return err
	}
	printAggregate(final)

	// Resubmission: every cell is content-addressed, so the identical
	// grid settles from the result cache without re-simulating — and
	// the aggregate is byte-identical by construction.
	id2, err := submit(ts.URL, req)
	if err != nil {
		return err
	}
	again, err := stream(ts.URL, id2)
	if err != nil {
		return err
	}
	a, _ := json.Marshal(final.Aggregate)
	b, _ := json.Marshal(again.Aggregate)
	fmt.Printf("resubmitted as %s: %d/%d cells cached, aggregates identical: %v\n",
		again.ID, again.CachedCells, again.TotalCells, string(a) == string(b))
	return nil
}

// submit posts one SweepRequest and returns the accepted sweep ID.
func submit(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("submit returned %d", resp.StatusCode)
	}
	var view experiment.SweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return "", err
	}
	return view.ID, nil
}

// stream follows a sweep's SSE feed to the terminal event and returns
// the settled view.
func stream(base, id string) (*experiment.SweepView, error) {
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events returned %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	settled := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev experiment.SweepEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		switch {
		case ev.Type == experiment.EventCell && ev.Cell != nil:
			settled++
			if ev.Cell.Metric != nil {
				fmt.Printf("  cell %2d (gamma=%.2f beta=%.2f): %s ratio=%.3f\n",
					ev.Cell.Index, ev.Cell.Params["gamma"], ev.Cell.Params["beta"],
					ev.Cell.State, *ev.Cell.Metric)
			} else {
				fmt.Printf("  cell %2d: %s %s\n", ev.Cell.Index, ev.Cell.State, ev.Cell.Error)
			}
		case ev.Type == experiment.EventSweep && ev.State != experiment.SweepRunning:
			if ev.Sweep == nil {
				return nil, fmt.Errorf("terminal event without view")
			}
			return ev.Sweep, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("stream ended before sweep %s settled", id)
}

// printAggregate renders the QAOA ratio surface and best angles.
func printAggregate(v *experiment.SweepView) {
	fmt.Printf("sweep %s %s: %d done / %d failed of %d cells\n",
		v.ID, v.State, v.DoneCells, v.FailedCells, v.TotalCells)
	if v.Aggregate == nil || v.Aggregate.QAOA == nil {
		fmt.Printf("no aggregate: %s\n", v.AggregateError)
		return
	}
	qa := v.Aggregate.QAOA
	fmt.Printf("ratio surface over %d properly-colorable edges:\n", qa.Edges)
	for _, p := range qa.Surface {
		fmt.Printf("  gamma=%.2f beta=%.2f ratio=%.3f\n", p.Gamma, p.Beta, p.Ratio)
	}
	fmt.Printf("best angles: gamma=%.2f beta=%.2f (ratio %.3f)\n",
		qa.BestGamma, qa.BestBeta, qa.BestRatio)
}
