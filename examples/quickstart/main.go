// Quickstart: build a three-qutrit GHZ circuit, submit it to the
// forecast cavity processor through the unified Backend/Job execution
// API, and inspect the routed report, the shot histogram, and a noisy
// trajectory re-run — the minimal end-to-end tour of the quditkit API.
package main

import (
	"fmt"
	"log"
	"runtime"

	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A register of three qutrits (d = 3 cavity qudits).
	logical, err := circuit.New(hilbert.Uniform(3, 3))
	if err != nil {
		return err
	}
	// Qutrit GHZ: Fourier gate creates the superposition, CSUM entangles.
	logical.MustAppend(gates.DFT(3), 0)
	logical.MustAppend(gates.CSUM(3, 3), 0, 1)
	logical.MustAppend(gates.CSUM(3, 3), 0, 2)
	fmt.Print(logical.String())

	// A two-cavity slice of the forecast device, trimmed to two modes per
	// cavity so the routed physical register stays small.
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		return err
	}

	// Noiseless statevector execution with a 512-shot histogram.
	res, err := proc.SubmitOne(logical, core.WithShots(512))
	if err != nil {
		return err
	}
	fmt.Printf("mapping (logical -> mode): %v (final: %v)\n",
		res.Mapping.LogicalToMode, res.Report.FinalLayout)
	fmt.Printf("swaps inserted: %d, duration: %.1f us, coherence fidelity: %.4f\n",
		res.Report.SwapsInserted, res.Report.DurationSec*1e6, res.Report.FidelityEstimate)

	// The GHZ state: (|000> + |111> + |222>)/sqrt(3), sampled.
	fmt.Printf("%d shots on the %s backend:\n", res.Counts.Total(), res.Backend)
	for _, e := range res.Counts.Top(5) {
		fmt.Printf("  |%s>  %3d shots  (p = %.3f)\n", e.Key, e.N, res.Counts.Prob(e.Key))
	}

	// Physics-derived per-gate noise for this dimension, applied by the
	// Monte-Carlo trajectory backend across a worker pool.
	model, err := proc.NoiseModelForDim(3)
	if err != nil {
		return err
	}
	fmt.Printf("derived noise model: damping %.2e, dephasing %.2e per gate\n",
		model.Damping, model.Dephasing)
	noisy, err := proc.SubmitOne(logical,
		core.WithBackend(core.Trajectory),
		core.WithNoise(model),
		core.WithShots(512),
		core.WithWorkers(runtime.NumCPU()))
	if err != nil {
		return err
	}
	fmt.Printf("noisy trajectory sampling (%d workers):\n", runtime.NumCPU())
	for _, e := range noisy.Counts.Top(3) {
		fmt.Printf("  |%s>  %3d shots\n", e.Key, e.N)
	}
	marg, err := noisy.Marginal(0)
	if err != nil {
		return err
	}
	fmt.Printf("wire 0 marginal under noise: %v\n", fmtProbs(marg))
	return nil
}

func fmtProbs(p []float64) []string {
	out := make([]string, len(p))
	for i, x := range p {
		out[i] = fmt.Sprintf("%.3f", x)
	}
	return out
}
