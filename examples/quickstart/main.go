// Quickstart: build a three-qutrit GHZ circuit, compile it onto the
// forecast cavity processor with noise-aware mapping, execute it, and
// inspect the routed resource report — the minimal end-to-end tour of the
// quditkit API.
package main

import (
	"fmt"
	"log"

	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A register of three qutrits (d = 3 cavity qudits).
	logical, err := circuit.New(hilbert.Uniform(3, 3))
	if err != nil {
		return err
	}
	// Qutrit GHZ: Fourier gate creates the superposition, CSUM entangles.
	logical.MustAppend(gates.DFT(3), 0)
	logical.MustAppend(gates.CSUM(3, 3), 0, 1)
	logical.MustAppend(gates.CSUM(3, 3), 0, 2)
	fmt.Print(logical.String())

	// A two-cavity slice of the forecast device is plenty for 3 qudits.
	proc, err := core.NewForecastProcessor(2, 1)
	if err != nil {
		return err
	}
	// Trim to two modes per cavity so the physical register stays small.
	for i := range proc.Device.Cavities {
		proc.Device.Cavities[i].Modes = proc.Device.Cavities[i].Modes[:2]
	}

	res, err := proc.Execute(logical)
	if err != nil {
		return err
	}
	fmt.Printf("mapping (logical -> mode): %v\n", res.Mapping.LogicalToMode)
	fmt.Printf("swaps inserted: %d, duration: %.1f us, coherence fidelity: %.4f\n",
		res.Report.SwapsInserted, res.Report.DurationSec*1e6, res.Report.FidelityEstimate)

	// The GHZ state: (|000> + |111> + |222>)/sqrt(3) on the mapped modes.
	fmt.Println("populated basis states:")
	sp := res.State.Space()
	for idx, p := range res.State.Probabilities() {
		if p > 1e-9 {
			fmt.Printf("  |%v>  p = %.4f\n", sp.Digits(idx), p)
		}
	}

	// Physics-derived per-gate noise for this dimension.
	model, err := proc.NoiseModelForDim(3)
	if err != nil {
		return err
	}
	fmt.Printf("derived noise model: damping %.2e, dephasing %.2e per gate\n",
		model.Damping, model.Dephasing)
	return nil
}
