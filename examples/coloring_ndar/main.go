// coloring_ndar: the optimization application (paper §II.B) — noisy QAOA
// graph coloring on qudits where photon loss is turned from an error into
// a search primitive by Noise-Directed Adaptive Remapping.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"quditkit/internal/core"
	"quditkit/internal/noise"
	"quditkit/internal/qaoa"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))
	g, err := qaoa.RandomRegularish(rng, 7, 3)
	if err != nil {
		return err
	}
	fmt.Printf("3-coloring a graph with %d vertices and %d edges\n", g.N, len(g.Edges))

	// The hardware error model: strong photon loss (the NDAR attractor)
	// plus depolarizing control noise.
	model := noise.Model{Damping: 0.2, Depol2: 0.02, Depol1: 0.002}
	base := qaoa.NDAROptions{
		Iterations: 5, Shots: 64, Gamma: 0.8, Beta: 0.5, Noise: model,
	}

	ndar, err := qaoa.RunNDAR(rng, g, 3, base)
	if err != nil {
		return err
	}
	vanillaOpts := base
	vanillaOpts.DisableRemap = true
	vanilla, err := qaoa.RunNDAR(rand.New(rand.NewSource(11)), g, 3, vanillaOpts)
	if err != nil {
		return err
	}

	fmt.Printf("optimum (brute force): %d proper edges\n\n", ndar.OptimalProper)
	fmt.Println("round | NDAR mean  P(opt) | vanilla mean  P(opt)")
	for i := range ndar.Rounds {
		fmt.Printf("%5d | %9.2f  %6.3f | %12.2f  %6.3f\n",
			i, ndar.Rounds[i].MeanProper, ndar.Rounds[i].POptimal,
			vanilla.Rounds[i].MeanProper, vanilla.Rounds[i].POptimal)
	}
	fmt.Printf("\nNDAR best coloring: %v (%d proper edges)\n", ndar.BestAssign, ndar.BestProper)

	// The same p=1 QAOA circuit routed onto the forecast processor and
	// sampled through the trajectory backend of the Submit API: every
	// shot is one Monte-Carlo unraveling of the photon-loss channel.
	col, err := qaoa.NewColoring(g, 3)
	if err != nil {
		return err
	}
	qc, err := col.Circuit([]float64{0.8}, []float64{0.5})
	if err != nil {
		return err
	}
	proc, err := core.NewCompactProcessor((g.N+1)/2, 2, 11)
	if err != nil {
		return err
	}
	res, err := proc.SubmitOne(qc,
		core.WithBackend(core.Trajectory),
		core.WithNoise(model),
		core.WithShots(128),
		core.WithWorkers(runtime.NumCPU()))
	if err != nil {
		return err
	}
	fmt.Printf("\ndevice run (%s backend, %d swaps): top sampled colorings:\n",
		res.Backend, res.Report.SwapsInserted)
	for _, e := range res.Counts.Top(3) {
		digits, err := core.ParseCountsKey(e.Key)
		if err != nil {
			return err
		}
		assign := col.Decode(digits)
		fmt.Printf("  %v  %3d shots  %d/%d proper edges\n",
			assign, e.N, g.ProperEdges(assign), len(g.Edges))
	}

	// The native qudit encoding never leaves the valid subspace; the
	// one-hot qubit encoding does, exponentially fast in the noise.
	oh, err := qaoa.NewOneHot(mustGraph(2), 3)
	if err != nil {
		return err
	}
	fmt.Println("\nhard-constraint survival (2-node instance):")
	for _, p := range []float64{0, 0.05, 0.2} {
		pv, err := oh.RunNoisyPValid(0.7, 0.4, noise.Model{Damping: p})
		if err != nil {
			return err
		}
		fmt.Printf("  damping %.2f: qubit one-hot P(valid) = %.4f, native qudit = 1.0000\n", p, pv)
	}
	return nil
}

func mustGraph(n int) *qaoa.Graph {
	g, err := qaoa.NewGraph(n, []qaoa.Edge{{U: 0, V: 1}})
	if err != nil {
		panic(err)
	}
	return g
}
