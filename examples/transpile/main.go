// Example transpile walks the device-targeting pipeline: one logical
// GHZ circuit lowered against a forecast cavity chain at each
// transpile level, then executed under the device-derived noise model
// — the "what would the machine actually return" study the paper's
// application-engineering framing asks for.
package main

import (
	"fmt"
	"log"
	"sort"

	"quditkit/internal/circuit"
	"quditkit/internal/core"
	"quditkit/internal/gates"
	"quditkit/internal/hilbert"
	"quditkit/internal/transpile"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 3-qutrit GHZ state: DFT on the control, CSUM fan-out.
	logical, err := circuit.New(hilbert.Dims{3, 3, 3})
	if err != nil {
		return err
	}
	logical.MustAppend(gates.DFT(3), 0)
	logical.MustAppend(gates.CSUM(3, 3), 0, 1)
	logical.MustAppend(gates.CSUM(3, 3), 0, 2)

	// The target: 2 forecast cavities trimmed to 2 modes each, so the
	// routed register stays simulable end to end.
	proc, err := core.NewCompactProcessor(2, 2, 1)
	if err != nil {
		return err
	}

	fmt.Println("=== lowering one GHZ circuit through each transpile level ===")
	for _, level := range []transpile.Level{
		transpile.LevelRoute, transpile.LevelNative, transpile.LevelNoise,
	} {
		res, err := proc.Transpile(logical, core.WithTranspile(level))
		if err != nil {
			return err
		}
		fmt.Printf("\nlevel %d (%s):\n", int(level), level)
		fmt.Printf("  ops %d -> %d   depth %d -> %d   swaps %d\n",
			logical.Len(), res.Physical.Len(),
			res.Report.DepthBefore, res.Report.DepthAfter, res.Report.SwapsInserted)
		fmt.Printf("  duration %.1f us   fidelity budget %.4f\n",
			res.Report.DurationSec*1e6, res.Report.FidelityEstimate)
		if res.Noise != nil {
			fmt.Printf("  device noise: damping %.2e, dephasing %.2e, idle (%.2e, %.2e)\n",
				res.Noise.Damping, res.Noise.Dephasing,
				res.Noise.IdleDamping, res.Noise.IdleDephasing)
		}
	}

	// Execute the device-noise level on the trajectory backend and
	// compare against the ideal histogram: only |000> and the GHZ
	// companions survive noiselessly; the device smears the rest.
	fmt.Println("\n=== executing under device-realistic noise ===")
	ideal, err := proc.SubmitOne(logical, core.WithShots(512))
	if err != nil {
		return err
	}
	noisy, err := proc.SubmitOne(logical,
		core.WithShots(512),
		core.WithBackend(core.Trajectory),
		core.WithTranspile(transpile.LevelNoise),
		core.WithWorkers(4))
	if err != nil {
		return err
	}
	fmt.Printf("ideal statevector counts:   %s\n", topCounts(ideal.Counts, 4))
	fmt.Printf("device-noise trajectories:  %s\n", topCounts(noisy.Counts, 4))
	fmt.Printf("applied noise model: damping %.2e (from the %s-level pipeline)\n",
		noisy.Noise.Damping, noisy.Transpile)

	ghzWeight := 0
	for _, key := range []string{"0.0.0", "1.1.1", "2.2.2"} {
		ghzWeight += noisy.Counts[key]
	}
	fmt.Printf("GHZ-subspace weight under device noise: %d / %d shots\n", ghzWeight, 512)
	return nil
}

// topCounts renders the k most frequent outcomes.
func topCounts(counts core.Counts, k int) string {
	type kv struct {
		key string
		n   int
	}
	all := make([]kv, 0, len(counts))
	for key, n := range counts {
		all = append(all, kv{key, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	out := ""
	for i, e := range all {
		if i > 0 {
			out += "  "
		}
		out += fmt.Sprintf("%s:%d", e.key, e.n)
	}
	return out
}
